package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

func TestProbeFailedLiteral(t *testing.T) {
	// ¬a → b and ¬a → ¬b: assuming ¬a conflicts, so a is forced.
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false)) // a ∨ b
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, true))  // a ∨ ¬b
	res := s.ProbeLiterals(0)
	if res.Unsat {
		t.Fatal("satisfiable formula refuted")
	}
	found := false
	for _, u := range res.Units {
		if u == cnf.MkLit(a, false) {
			found = true
		}
	}
	if !found {
		t.Fatalf("failed literal a not derived: %+v", res)
	}
	if s.Solve() != Sat || !s.Value(a) {
		t.Fatal("probe unit not retained")
	}
}

func TestProbeNecessaryAssignment(t *testing.T) {
	// a → c and ¬a → c: c is necessary though no branch fails.
	s := NewDefault()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	_ = b
	s.AddClause(cnf.MkLit(a, true), cnf.MkLit(c, false))  // ¬a ∨ c
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(c, false)) // a ∨ c
	res := s.ProbeLiterals(0)
	found := false
	for _, u := range res.Units {
		if u == cnf.MkLit(c, false) {
			found = true
		}
	}
	if !found {
		t.Fatalf("necessary assignment c not derived: %+v", res)
	}
}

func TestProbeEquivalence(t *testing.T) {
	// a ↔ b via two binary clauses; probing a must report a ≡ b.
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, true), cnf.MkLit(b, false))
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, true))
	// Add an extra variable so the formula is not fully determined.
	cvar := s.NewVar()
	s.AddClause(cnf.MkLit(cvar, false), cnf.MkLit(a, false))
	res := s.ProbeLiterals(0)
	found := false
	for _, eq := range res.Equivalences {
		x, y := eq[0], eq[1]
		if x.Var() == a && y.Var() == b && x.Neg() == y.Neg() {
			found = true
		}
	}
	if !found {
		t.Fatalf("equivalence a ≡ b not found: %+v", res.Equivalences)
	}
}

func TestProbeDetectsUnsat(t *testing.T) {
	// Both branches of a fail.
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false))
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, true))
	s.AddClause(cnf.MkLit(a, true), cnf.MkLit(b, false))
	s.AddClause(cnf.MkLit(a, true), cnf.MkLit(b, true))
	res := s.ProbeLiterals(0)
	if !res.Unsat {
		t.Fatal("UNSAT not detected by probing")
	}
	if s.Solve() != Unsat {
		t.Fatal("solver state inconsistent after probe refutation")
	}
}

// Probing must never change satisfiability: fuzz against plain solving.
func TestProbePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(456))
	for trial := 0; trial < 60; trial++ {
		nVars := 4 + rng.Intn(8)
		f := randomFormula(rng, nVars, int(4.2*float64(nVars)), 3)
		plain := New(DefaultOptions(ProfileMiniSat))
		plain.AddFormula(f)
		want := plain.Solve()

		probed := New(DefaultOptions(ProfileMiniSat))
		probed.AddFormula(f)
		res := probed.ProbeLiterals(0)
		got := Unsat
		if !res.Unsat {
			got = probed.Solve()
		}
		if got != want {
			t.Fatalf("trial %d: plain %v, probed %v", trial, want, got)
		}
		// All probe units must be consequences.
		if want == Sat && !res.Unsat {
			for mask := 0; mask < 1<<uint(nVars); mask++ {
				assign := func(v cnf.Var) bool { return mask>>uint(v)&1 == 1 }
				if !f.Eval(assign) {
					continue
				}
				for _, u := range res.Units {
					if assign(u.Var()) == u.Neg() {
						t.Fatalf("trial %d: probe unit %v violated by a model", trial, u)
					}
				}
				for _, eq := range res.Equivalences {
					va := assign(eq[0].Var()) != eq[0].Neg()
					vb := assign(eq[1].Var()) != eq[1].Neg()
					if va != vb {
						t.Fatalf("trial %d: probe equivalence %v violated", trial, eq)
					}
				}
			}
		}
	}
}

func TestProbeMaxVars(t *testing.T) {
	s := NewDefault()
	for i := 0; i < 10; i++ {
		s.NewVar()
	}
	s.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	res := s.ProbeLiterals(3)
	if res.Probed != 3 {
		t.Fatalf("probed %d vars, want 3", res.Probed)
	}
}
