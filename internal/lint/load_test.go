package lint

import (
	"go/build"
	"os"
	"path/filepath"
	"testing"
)

// writeTree materializes a file tree under a fresh temp dir: keys are
// slash-relative paths, values file contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// miniModule is a small self-contained module exercising the loader's
// corner cases: a build-constrained variant pair, an intra-module
// dependency, and a vendored-style nested module whose code is broken —
// proving it is never parsed.
func miniModule(t *testing.T) string {
	return writeTree(t, map[string]string{
		"go.mod":            "module example.com/mini\n\ngo 1.22\n",
		"b/b.go":            "package b\n\nfunc Value() int { return 40 }\n",
		"a/a.go":            "package a\n\nimport \"example.com/mini/b\"\n\nfunc Value() int { return b.Value() + 2 }\n",
		"osdep/os_linux.go": "//go:build linux\n\npackage osdep\n\n// Tag names the selected variant.\nconst Tag = \"linux\"\n",
		"osdep/os_other.go": "//go:build !linux\n\npackage osdep\n\n// Tag names the selected variant.\nconst Tag = \"other\"\n",
		// The nested module is syntactically invalid on purpose: loading
		// it at all is a bug, not just a wrong package list.
		"vendorish/go.mod": "module example.com/vendorish\n\ngo 1.22\n",
		"vendorish/v.go":   "package vendorish\n\nfunc broken(  {\n",
	})
}

// TestLoadBuildConstraints: exactly one file of a //go:build linux /
// !linux variant pair loads, and it is the one matching the build
// context. Loading both would fail type-checking on the Tag
// redeclaration, so a clean load of two files would also be a bug.
func TestLoadBuildConstraints(t *testing.T) {
	root := miniModule(t)
	pkgs, err := LoadModule(root, []string{"./osdep"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want exactly 1 of the variant pair", len(pkg.Files))
	}
	name := filepath.Base(pkg.Fset.Position(pkg.Files[0].Pos()).Filename)
	want := "os_other.go"
	if build.Default.GOOS == "linux" {
		want = "os_linux.go"
	}
	if name != want {
		t.Errorf("loaded %s, want %s for GOOS=%s", name, want, build.Default.GOOS)
	}
	tag := pkg.Types.Scope().Lookup("Tag")
	if tag == nil {
		t.Fatal("constant Tag not type-checked")
	}
}

// TestLoadSkipsNestedModule: ./... never descends into a directory with
// its own go.mod (vendored-style nested module), even one that would not
// parse.
func TestLoadSkipsNestedModule(t *testing.T) {
	root := miniModule(t)
	pkgs, err := LoadModule(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	paths := map[string]bool{}
	for _, pkg := range pkgs {
		paths[pkg.Path] = true
	}
	for _, want := range []string{"example.com/mini/a", "example.com/mini/b", "example.com/mini/osdep"} {
		if !paths[want] {
			t.Errorf("missing package %s in %v", want, paths)
		}
	}
	if paths["example.com/vendorish"] || paths["example.com/mini/vendorish"] {
		t.Errorf("nested module loaded: %v", paths)
	}
}

// TestLoadProgramAllIncludesDeps: a pattern-scoped load reports on the
// matched packages only, but Program.All carries every module-local
// dependency the type-checker pulled in, so call-effect summaries stay
// whole-module on targeted runs.
func TestLoadProgramAllIncludesDeps(t *testing.T) {
	root := miniModule(t)
	prog, err := LoadProgram(root, []string{"./a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Pkgs) != 1 || prog.Pkgs[0].Path != "example.com/mini/a" {
		t.Fatalf("Pkgs = %v, want exactly example.com/mini/a", prog.Pkgs)
	}
	all := map[string]bool{}
	for _, pkg := range prog.All {
		all[pkg.Path] = true
	}
	if !all["example.com/mini/b"] {
		t.Errorf("All is missing the dependency example.com/mini/b: %v", all)
	}
	if all["example.com/mini/osdep"] {
		t.Errorf("All contains osdep, which nothing imports: %v", all)
	}
}
