package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset is shared by every package of a LoadModule call.
	Fset *token.FileSet
	// Files are the parsed non-test Go files, sorted by filename.
	Files []*ast.File
	// Types and Info carry the go/types results.
	Types *types.Package
	Info  *types.Info
}

// FindModuleRoot walks up from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// loader type-checks module-local packages on demand, delegating stdlib
// imports to the go/importer source importer (compiled-from-source, no
// x/tools, no export data needed).
type loader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // import path -> loaded package
	loading map[string]bool     // cycle guard
}

func newLoader(root string) (*loader, error) {
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	// The source importer consults build.Default. Force cgo off so
	// packages with cgo variants (net, os/user) resolve to their pure-Go
	// fallbacks, which the importer can type-check from source alone.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &loader{
		root:    root,
		modPath: mod,
		fset:    fset,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load
// recursively through the loader, everything else goes to the stdlib
// source importer.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// dirFor maps a module-local import path to its directory.
func (l *loader) dirFor(path string) string {
	rel := strings.TrimPrefix(path, l.modPath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// load parses and type-checks one module-local package (cached).
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %v", path, err)
	}
	var filenames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints the way the go tool would (default tag
		// set, cgo off): without this, mutually exclusive variants like
		// bosphorusd's pprof_on.go/pprof_off.go both load and the package
		// fails to type-check on the redeclaration.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		filenames = append(filenames, filepath.Join(dir, name))
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // collect the first error via Check's return
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// skipDir reports directories never considered part of the module:
// VCS/tooling metadata, fixtures, and nested modules.
func skipDir(root, dir string, name string) bool {
	if name == "testdata" {
		return true
	}
	if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
		return true
	}
	if dir != root {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return true // nested module
		}
	}
	return false
}

// packageDirs enumerates every directory under root holding at least one
// non-test Go file.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if p != root && skipDir(root, p, d.Name()) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// LoadModule loads the packages of the module rooted at root matched by
// the patterns. Supported patterns: "./..." (every package), "./dir" or
// "dir" (one package), and "./dir/..." (a subtree). Loading stops at the
// first parse or type error.
func LoadModule(root string, patterns []string) ([]*Package, error) {
	prog, err := LoadProgram(root, patterns)
	if err != nil {
		return nil, err
	}
	return prog.Pkgs, nil
}

// LoadProgram loads the packages matched by the patterns plus every
// module-local dependency the type-checker pulled in along the way. The
// matched packages become Program.Pkgs (what analyzers report on);
// Program.All additionally holds the dependencies, so call-effect
// summaries see the whole module even when only a subtree was requested.
func LoadProgram(root string, patterns []string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	var dirs []string
	addDir := func(d string) {
		if !dirSet[d] {
			dirSet[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		}
		base := root
		if pat != "" && pat != "." {
			base = filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		}
		if recursive {
			sub, err := packageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				addDir(d)
			}
		} else {
			addDir(base)
		}
	}

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := l.modPath
		if rel != "." {
			path = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	// The loader cache holds everything type-checking touched, including
	// module-local dependencies outside the requested patterns.
	var all []*Package
	for _, pkg := range l.pkgs {
		all = append(all, pkg)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Path < all[j].Path })
	return &Program{Pkgs: pkgs, All: all}, nil
}
