package proof

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/anf"
	"repro/internal/conv"
	"repro/internal/sat"
)

// Verdict classifies how a fact was (or was not) independently verified.
type Verdict int

const (
	// VerdictInput: the fact is one of the original input equations.
	VerdictInput Verdict = iota
	// VerdictWitness: the fact's algebraic witness replayed exactly — the
	// recorded polynomial combination of verified earlier records
	// reproduces the fact, so it lies in the ideal of the input system.
	VerdictWitness
	// VerdictEntailed: a SAT refutation showed input ∧ (fact ≠ 0) is
	// unsatisfiable, so the fact is semantically entailed.
	VerdictEntailed
	// VerdictFailed: the fact is wrong — a random assignment or a SAT
	// model satisfies the input but falsifies the fact.
	VerdictFailed
	// VerdictUnverified: no witness replay and the refutation budget ran
	// out; nothing is known either way.
	VerdictUnverified
)

func (v Verdict) String() string {
	switch v {
	case VerdictInput:
		return "INPUT"
	case VerdictWitness:
		return "WITNESS"
	case VerdictEntailed:
		return "ENTAILED"
	case VerdictFailed:
		return "FAILED"
	default:
		return "UNVERIFIED"
	}
}

// Verified reports whether the verdict certifies the fact.
func (v Verdict) Verified() bool {
	return v == VerdictInput || v == VerdictWitness || v == VerdictEntailed
}

// FactVerdict is the verification outcome for one ledger record.
type FactVerdict struct {
	ID        int
	Technique string
	Iteration int
	Verdict   Verdict
	// Detail explains FAILED/UNVERIFIED outcomes and names the evidence
	// for positive ones.
	Detail string
}

// VerifyReport aggregates per-fact verdicts.
type VerifyReport struct {
	Verdicts []FactVerdict
	// Verified counts INPUT + WITNESS + ENTAILED; Failed and Unverified
	// count the rest.
	Verified, Failed, Unverified int
}

// AllVerified reports whether every checked fact was certified.
func (r *VerifyReport) AllVerified() bool { return r.Failed == 0 && r.Unverified == 0 }

// Summary is a one-line human-readable tally.
func (r *VerifyReport) Summary() string {
	return fmt.Sprintf("facts=%d verified=%d failed=%d unverified=%d",
		len(r.Verdicts), r.Verified, r.Failed, r.Unverified)
}

// VerifyOptions tunes VerifyFacts.
type VerifyOptions struct {
	// Rounds is the number of random GF(2) assignments used as a cheap
	// falsification screen before any SAT work (default 32).
	Rounds int
	// Seed fixes the random screen.
	Seed int64
	// RefuteBudget is the conflict budget for each SAT entailment
	// refutation (default 50000; -1 = unlimited).
	RefuteBudget int64
	// Context, when non-nil, cancels in-flight refutations cooperatively;
	// remaining facts come back UNVERIFIED.
	Context context.Context
	// Conv sets the ANF→CNF conversion for refutations (zero value =
	// conv.DefaultOptions).
	Conv conv.Options
	// Profile picks the refutation solver (default CryptoMiniSat).
	Profile sat.Profile
}

// VerifyFacts independently re-derives every learnt fact in the ledger
// against the original ANF system. Verification never trusts the engine:
// witnesses are replayed with exact Boolean-ring arithmetic over the
// recorded source polynomials (which bottom out at the input equations),
// and facts without a replayable witness are checked by refutation —
// solving input ∧ (fact ⊕ 1) with an independent SAT translation. A
// random-assignment screen runs first so wrong facts fail fast.
func VerifyFacts(original *anf.System, lg *Ledger, opts VerifyOptions) *VerifyReport {
	if opts.Rounds <= 0 {
		opts.Rounds = 32
	}
	if opts.RefuteBudget == 0 {
		opts.RefuteBudget = 50000
	}
	if opts.Conv == (conv.Options{}) {
		opts.Conv = conv.DefaultOptions()
	}
	if opts.Profile == 0 {
		opts.Profile = sat.ProfileCMS
	}
	rng := rand.New(rand.NewSource(opts.Seed + 0x9e3779b9))

	report := &VerifyReport{}
	// verified[i] is true once record i is certified; witness replay may
	// only lean on certified sources, so records are processed in ID
	// order (witnesses never reference forward).
	verified := make([]bool, lg.Len())
	for i := 0; i < lg.Len(); i++ {
		rec := lg.At(i)
		if rec.Technique == TechInput {
			verified[i] = true
			continue
		}
		fv := FactVerdict{ID: rec.ID, Technique: rec.Technique, Iteration: rec.Iteration}
		fv.Verdict, fv.Detail = verifyOne(original, lg, rec, verified, rng, opts)
		if fv.Verdict.Verified() {
			verified[i] = true
			report.Verified++
		} else if fv.Verdict == VerdictFailed {
			report.Failed++
		} else {
			report.Unverified++
		}
		report.Verdicts = append(report.Verdicts, fv)
	}
	return report
}

func verifyOne(original *anf.System, lg *Ledger, rec Record, verified []bool, rng *rand.Rand, opts VerifyOptions) (Verdict, string) {
	// Cheap screen: a random assignment satisfying the input must zero
	// the fact. Few random assignments satisfy a constrained system, but
	// when one does and the fact disagrees, the fact is refuted outright.
	n := original.NumVars()
	assign := make([]bool, n)
	for r := 0; r < opts.Rounds; r++ {
		for v := range assign {
			assign[v] = rng.Intn(2) == 1
		}
		at := func(v anf.Var) bool { return int(v) < n && assign[v] }
		if original.Eval(at) && rec.Poly.Eval(at) {
			return VerdictFailed, fmt.Sprintf("random assignment satisfies the input but fact evaluates to 1 (round %d)", r)
		}
	}

	if original.Contains(rec.Poly) {
		return VerdictInput, "matches an input equation"
	}

	if len(rec.Witness) > 0 {
		if v, detail, ok := replayWitness(lg, rec, verified); ok {
			return v, detail
		} else if detail != "" {
			// A witness that replays to the wrong polynomial is a recording
			// bug, not proof of a wrong fact — fall through to refutation,
			// but surface the replay failure if that also stalls.
			return refute(original, rec, opts, "witness replay failed: "+detail)
		}
	}
	return refute(original, rec, opts, "no replayable witness")
}

// replayWitness re-runs the recorded algebra. ok=false with a non-empty
// detail means the replay was attempted and failed; ok=false with empty
// detail means the witness is not replayable (placeholder sources).
func replayWitness(lg *Ledger, rec Record, verified []bool) (Verdict, string, bool) {
	sum := anf.Zero()
	for _, t := range rec.Witness {
		if t.Src < 0 {
			return 0, "", false
		}
		if t.Src >= rec.ID {
			return 0, fmt.Sprintf("witness references record %d at or after the fact itself", t.Src), false
		}
		if !verified[t.Src] {
			return 0, "", false
		}
		sum = sum.Add(t.Mult.Mul(lg.At(t.Src).Poly))
	}
	if !sum.Equal(rec.Poly) {
		return 0, fmt.Sprintf("combination yields %s, fact is %s", sum, rec.Poly), false
	}
	return VerdictWitness, fmt.Sprintf("exact replay over %d source records", len(rec.Witness)), true
}

// refute checks semantic entailment with an independent SAT translation:
// input ∧ (fact ⊕ 1) unsatisfiable ⇔ input ⊨ fact = 0. For the
// contradiction fact 1 = 0 this degenerates to refuting the input alone.
func refute(original *anf.System, rec Record, opts VerifyOptions, why string) (Verdict, string) {
	sys := original.Clone()
	if !rec.Poly.IsOne() {
		sys.Add(rec.Poly.AddConstant(true))
	}
	f, _ := conv.ANFToCNF(sys, opts.Conv)
	s := sat.New(sat.DefaultOptions(opts.Profile))
	if !s.AddFormula(f) {
		return VerdictEntailed, "refutation UNSAT at clause insertion (" + why + ")"
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	switch s.SolveLimitedCtx(ctx, opts.RefuteBudget) {
	case sat.Unsat:
		return VerdictEntailed, "SAT refutation proved entailment (" + why + ")"
	case sat.Sat:
		if rec.Poly.IsOne() {
			return VerdictFailed, "input system is satisfiable but the ledger claims a contradiction"
		}
		return VerdictFailed, "SAT model satisfies the input but falsifies the fact"
	default:
		return VerdictUnverified, "refutation budget exhausted (" + why + ")"
	}
}
