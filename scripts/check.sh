#!/bin/sh
# check.sh — the full local gate: formatting, vet, build, race-enabled
# tests, a proof round-trip smoke, short fuzz runs of the DRAT checker,
# and a one-iteration smoke pass over the perf-critical benchmarks. CI
# and pre-commit runs should both go through `make check`, which calls
# this.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> bosphoruslint"
# The project analyzer suite: the PR-4 pattern rules (ctxpoll,
# determinism, gf2pack, proofhook, lockhold) plus the dataflow analyzers
# (arenagc, hotpath, goleak, verdictcheck). On failure this prints
# file:line:col diagnostics and the set -e aborts the gate.
go run ./cmd/bosphoruslint ./...

echo "==> go build"
go build ./...

echo "==> build bosphorusd"
go build -o /tmp/bosphorusd.check ./cmd/bosphorusd
rm -f /tmp/bosphorusd.check

echo "==> go test -race"
go test -race ./...

echo "==> server tests (-race, uncached)"
go test -race -count=1 ./internal/server

echo "==> bosphorusd e2e smoke (start, solve, backpressure, drain)"
go test -count=1 -run TestEndToEndSmoke ./cmd/bosphorusd

echo "==> proof round-trip smoke (solve UNSAT with --proof, check, reject corrupted)"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
go build -o "$workdir/bosphorus" ./cmd/bosphorus
go build -o "$workdir/proofcheck" ./cmd/proofcheck
"$workdir/bosphorus" -anf examples/instances/unsat_pair.anf -solve \
	-no-xl -no-elimlin -verify-facts -proof "$workdir/p.drat" | grep -q "s UNSATISFIABLE"
"$workdir/proofcheck" -cnf "$workdir/p.drat.cnf" "$workdir/p.drat" | grep -q "s VERIFIED"
# A corrupted proof (bogus leading derivation) must be rejected nonzero.
{ echo "999999 0"; cat "$workdir/p.drat"; } > "$workdir/bad.drat"
if "$workdir/proofcheck" -cnf "$workdir/p.drat.cnf" "$workdir/bad.drat" >/dev/null 2>&1; then
	echo "proofcheck accepted a corrupted proof" >&2
	exit 1
fi

echo "==> parity proof round-trip smoke (native parity clauses, x-justified DRAT, reject corrupted)"
# unsat_parity.anf converts to native XOR clauses; the refutation flows
# through the solver's packed parity kind and the proof's derived clauses
# carry GF(2)-rowspan ("x") justifications. The -native-xor=false run is
# the differential baseline: same verdict through the CNF-cut path.
"$workdir/bosphorus" -anf examples/instances/unsat_parity.anf -solve \
	-no-xl -no-elimlin -proof "$workdir/parity.drat" | grep -q "s UNSATISFIABLE"
"$workdir/proofcheck" -cnf "$workdir/parity.drat.cnf" "$workdir/parity.drat" | grep -q "s VERIFIED"
"$workdir/bosphorus" -anf examples/instances/unsat_parity.anf -solve \
	-no-xl -no-elimlin -native-xor=false | grep -q "s UNSATISFIABLE"
{ echo "999999 0"; cat "$workdir/parity.drat"; } > "$workdir/parity-bad.drat"
if "$workdir/proofcheck" -cnf "$workdir/parity.drat.cnf" "$workdir/parity-bad.drat" >/dev/null 2>&1; then
	echo "proofcheck accepted a corrupted parity proof" >&2
	exit 1
fi

echo "==> multi-node smoke (coordinator + two worker nodes, proofcheck on the stitched proof)"
BOSPHORUSD_SMOKE_DIR="$workdir" go test -count=1 -run TestMultiNodeSmoke ./cmd/bosphorusd
"$workdir/proofcheck" -cnf "$workdir/smoke.cnf" "$workdir/smoke.drat" | grep -q "s VERIFIED"

echo "==> proof checker fuzz (a few seconds each)"
go test -run '^$' -fuzz '^FuzzProofCheck$' -fuzztime 3s ./internal/proof
go test -run '^$' -fuzz '^FuzzProofMutation$' -fuzztime 3s ./internal/proof

echo "==> lint directive-parser fuzz (a few seconds)"
go test -run '^$' -fuzz '^FuzzDirectives$' -fuzztime 3s ./internal/lint

echo "==> parity clause fuzz (a few seconds)"
go test -run '^$' -fuzz '^FuzzParityClause$' -fuzztime 3s ./internal/sat

echo "==> bench smoke (1 iteration per benchmark)"
go test -run '^$' -bench 'XL|RREF|ElimLin|PickElimVar' -benchtime 1x \
	./internal/anf ./internal/core ./internal/gf2

echo "==> benchtab harness smoke (-quick snapshot + -compare on frozen baselines)"
go run ./cmd/benchtab -perf "$workdir/quick.json" -quick
# Gate disabled (-gate=-1): this asserts that -compare parses every frozen
# snapshot generation (pr1 has no cdcl section, pr6 no cube section), not
# that the newer snapshots beat the older ones.
go run ./cmd/benchtab -compare -gate=-1 BENCH_pr1.json BENCH_pr5.json >/dev/null
go run ./cmd/benchtab -compare -gate=-1 BENCH_pr6.json BENCH_pr7.json >/dev/null
go run ./cmd/benchtab -compare -gate=-1 BENCH_pr7.json BENCH_pr8.json >/dev/null
go run ./cmd/benchtab -compare -gate=-1 BENCH_pr8.json BENCH_pr10.json >/dev/null
go run ./cmd/benchtab -compare -gate=-1 BENCH_pr10.json "$workdir/quick.json" >/dev/null

echo "==> fragment routing smoke (classifier fuzz + route/walksat quick tests)"
go test -count=1 -run 'TestFragmentJobs' ./internal/bench
go test -run '^$' -fuzz '^FuzzClassify$' -fuzztime 3s ./internal/route

echo "==> parity family smoke (frozen-seed verdicts, both arms)"
go test -count=1 -run 'TestParityJobsVerdicts' ./internal/bench

echo "==> OK"
