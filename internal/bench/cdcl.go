// CDCL microbenchmark families. Unlike the Table II harness (whole
// pipeline, wall-clock scoring), these jobs exercise the CDCL solver's two
// hot paths in isolation so successive PRs can diff constant factors like
// against like:
//
//   - the propagation family is dominated by unit propagation over long
//     watched-literal lists (implication chains, BMC-style circuit
//     unrollings, planted parity systems with few conflicts), and
//   - the conflict family is dominated by conflict analysis and clause-DB
//     churn (pigeonhole, random 3-SAT at the phase transition, mutilated
//     chessboard — thousands of learnt clauses, reduceDB triggered).
//
// Every job is deterministic: a fixed generator seed and a fixed solver
// seed give bit-identical conflict/decision/propagation counts run over
// run, so ns/op and allocs/op changes are attributable to the solver's
// internals rather than to search noise.
package bench

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/satgen"
)

// CDCLJob is one deterministic solver-level benchmark instance.
type CDCLJob struct {
	Name string
	// Want is the instance's known verdict; RunCDCLJob checks it.
	Want satgen.Status
	// Build constructs the formula (called outside the timed region).
	Build func() *cnf.Formula
}

// ImplicationChain builds the pure-propagation instance: a chain
// x0 → x1 → … → x_{n-1} closed by the unit x0, so one decision-free
// propagation pass assigns every variable through the watcher lists.
func ImplicationChain(n int) *cnf.Formula {
	f := cnf.NewFormula(n)
	for i := 0; i+1 < n; i++ {
		f.AddClause(cnf.MkLit(cnf.Var(i), true), cnf.MkLit(cnf.Var(i+1), false))
	}
	f.AddClause(cnf.MkLit(0, false))
	return f
}

// CDCLPropagationJobs returns the propagation-heavy family.
func CDCLPropagationJobs() []CDCLJob {
	return []CDCLJob{
		{
			Name: "chain-20000",
			Want: satgen.StatusSat,
			Build: func() *cnf.Formula {
				return ImplicationChain(20000)
			},
		},
		{
			Name: "lfsr-sat-n16-s48",
			Want: satgen.StatusSat,
			Build: func() *cnf.Formula {
				return satgen.LFSRReach(16, 48, false, rand.New(rand.NewSource(11))).Formula
			},
		},
		{
			Name: "parity-planted-v96-e80-w3",
			Want: satgen.StatusSat,
			Build: func() *cnf.Formula {
				return satgen.ParityChain(96, 80, 3, true, rand.New(rand.NewSource(12))).Formula
			},
		},
	}
}

// CDCLConflictJobs returns the conflict-analysis-heavy family.
func CDCLConflictJobs() []CDCLJob {
	return []CDCLJob{
		{
			Name: "php-8-7",
			Want: satgen.StatusUnsat,
			Build: func() *cnf.Formula {
				return satgen.Pigeonhole(8, 7).Formula
			},
		},
		{
			Name: "rand3sat-v170",
			Want: satgen.StatusUnknown,
			Build: func() *cnf.Formula {
				return satgen.RandomKSAT(170, 3, 4.26, rand.New(rand.NewSource(13))).Formula
			},
		},
		{
			Name: "mutilated-chessboard-8",
			Want: satgen.StatusUnsat,
			Build: func() *cnf.Formula {
				return satgen.MutilatedChessboard(8).Formula
			},
		},
	}
}

// RunCDCLJob solves one job once with the given profile and returns the
// verdict and counter snapshot. It is the non-timed twin of MeasureCDCL,
// used by the determinism/equivalence tests.
func RunCDCLJob(job CDCLJob, profile sat.Profile) (sat.Status, sat.Stats) {
	opts := sat.DefaultOptions(profile)
	s := sat.New(opts)
	if !s.AddFormula(job.Build()) {
		return sat.Unsat, s.Snapshot()
	}
	st := s.Solve()
	return st, s.Snapshot()
}

// CDCLMeasurement is one job's timing/allocation result.
type CDCLMeasurement struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// MeasureCDCL benchmarks each job (formula built outside the timed loop,
// one full solver construction + load + solve per iteration) `rounds`
// times via testing.Benchmark and returns the per-job medians. The
// medians-of-rounds shape matches the perf snapshots of earlier PRs
// (BENCH_pr1.json) so the JSON artifacts diff cleanly.
func MeasureCDCL(jobs []CDCLJob, profile sat.Profile, rounds int) map[string]CDCLMeasurement {
	if rounds <= 0 {
		rounds = 5
	}
	out := make(map[string]CDCLMeasurement, len(jobs))
	for _, job := range jobs {
		f := job.Build()
		var ns, allocs, bytes []int64
		for r := 0; r < rounds; r++ {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := sat.New(sat.DefaultOptions(profile))
					if !s.AddFormula(f) {
						continue
					}
					s.Solve()
				}
			})
			ns = append(ns, res.NsPerOp())
			allocs = append(allocs, res.AllocsPerOp())
			bytes = append(bytes, res.AllocedBytesPerOp())
		}
		out[job.Name] = CDCLMeasurement{
			NsPerOp:     median64(ns),
			AllocsPerOp: median64(allocs),
			BytesPerOp:  median64(bytes),
		}
	}
	return out
}

func median64(xs []int64) int64 {
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}
