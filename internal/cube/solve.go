package cube

import (
	"bytes"
	"context"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/proof"
	"repro/internal/sat"
	"repro/internal/share"
)

// Solve runs cube-and-conquer on f. With Workers ≤ 1 and ForceSplit off
// it degenerates to a plain solve on one solver built from SolverOptions —
// that path is bit-identical to using the solver directly, which is the
// single-worker determinism contract.
func Solve(ctx context.Context, f *cnf.Formula, opts Options) *Result {
	//lint:ignore determinism timing only: feeds Result.Elapsed, never ordering
	start := time.Now()
	var res *Result
	if opts.Workers <= 1 && !opts.ForceSplit {
		res = solveDirect(ctx, f, opts)
	} else {
		res = solveCubes(ctx, f, opts)
	}
	res.Elapsed = time.Since(start)
	return res
}

// solveDirect is the splitless path: one solver, one solve call.
func solveDirect(ctx context.Context, f *cnf.Formula, opts Options) *Result {
	res := &Result{Status: sat.Unknown, SatCube: -1}
	s := sat.New(opts.SolverOptions)
	var buf bytes.Buffer
	var pw *proof.TextWriter
	if opts.WithProof {
		pw = proof.NewTextWriter(&buf)
		s.SetProof(pw)
	}
	st := sat.Unsat
	if s.AddFormula(f.Clone()) {
		if opts.Timeout > 0 {
			//lint:ignore determinism deadline only: bounds the solve, never ordering
			s.SetDeadline(time.Now().Add(opts.Timeout))
		}
		st = s.SolveLimitedCtx(ctx, -1)
	}
	res.Status = st
	if st == sat.Sat {
		res.Model = s.Model()
	}
	res.Units = s.LearntUnits()
	res.Binaries = s.LearntBinaries()
	snap := s.Snapshot()
	res.WorkerStats = []sat.Stats{snap}
	res.Conflicts, res.Decisions, res.Propagations = snap.Conflicts, snap.Decisions, snap.Propagations
	if st == sat.Unsat && pw != nil {
		pw.Flush()
		res.Proof = append([]byte(nil), buf.Bytes()...)
	}
	return res
}

// cubeOutcome is one cube's terminal state.
type cubeOutcome struct {
	status   sat.Status
	failed   []cnf.Lit // failed assumptions on Unsat
	model    []bool
	outright bool // the worker refuted the formula independent of the cube
}

// workerState is one conquer worker's end-of-run summary.
type workerState struct {
	stats    sat.Stats
	units    []cnf.Lit
	binaries []cnf.Clause
	segment  []byte
}

// solveCubes is the split path: build the tree, fan the open cubes over
// the worker pool, merge.
func solveCubes(ctx context.Context, f *cnf.Formula, opts Options) *Result {
	res := &Result{Status: sat.Unknown, SatCube: -1}
	tree := Split(f, opts)
	res.Cubes = len(tree.Open)
	res.RefutedAtSplit = tree.RefutedAtSplit
	if tree.Status == sat.Unsat {
		// Every leaf refuted by propagation alone: the tree merge is the
		// whole proof.
		res.Status = sat.Unsat
		if opts.WithProof {
			res.Proof = stitch(tree, nil, nil)
		}
		return res
	}

	nWorkers := opts.Workers
	if nWorkers < 1 {
		nWorkers = 1
	}
	if nWorkers > len(tree.Open) {
		nWorkers = len(tree.Open)
	}
	var ring *share.Ring
	if opts.ShareSlots > 0 && opts.ShareMaxLBD > 0 && nWorkers > 1 {
		ring = share.NewRing(opts.ShareSlots, opts.ShareMaxLBD)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var deadline time.Time
	if opts.Timeout > 0 {
		//lint:ignore determinism deadline only: bounds the solve, never ordering
		deadline = time.Now().Add(opts.Timeout)
	}

	outcomes := make([]cubeOutcome, len(tree.Open))
	workers := make([]workerState, nWorkers)
	jobs := make(chan int)
	go func() {
		defer close(jobs)
		for i := range tree.Open {
			select {
			case jobs <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			wopts := opts.SolverOptions
			// Worker 0 keeps the configured seed so the one-worker
			// ForceSplit run stays bit-reproducible.
			wopts.RandomSeed += int64(id)
			s := sat.New(wopts)
			var seg bytes.Buffer
			var sw SegmentWriter
			if opts.WithProof {
				// Installed before AddFormula so a contradiction found at
				// clause insertion logs its empty clause into the segment.
				sw = NewSegmentWriter(&seg)
				s.SetProof(sw)
			}
			ok := s.AddFormula(f.Clone())
			if ring != nil {
				s.SetExchange(ring.Endpoint())
			}
			if !deadline.IsZero() {
				s.SetDeadline(deadline)
			}
			s.SetInterrupt(func() bool { return runCtx.Err() != nil })
			for idx := range jobs {
				if runCtx.Err() != nil {
					break
				}
				var st sat.Status
				if ok {
					st = s.SolveAssuming(tree.Open[idx], -1)
				} else {
					st = sat.Unsat
				}
				switch st {
				case sat.Sat:
					outcomes[idx] = cubeOutcome{status: st, model: s.Model()}
					cancel()
				case sat.Unsat:
					o := cubeOutcome{status: st, failed: s.FailedAssumptions()}
					o.outright = !s.Okay()
					outcomes[idx] = o
					if o.outright {
						// The empty clause is in this worker's segment:
						// the formula is refuted no matter the cube.
						cancel()
					}
				default:
					outcomes[idx] = cubeOutcome{status: st}
				}
				if !s.Okay() {
					break
				}
			}
			ws := workerState{
				stats:    s.Snapshot(),
				units:    s.LearntUnits(),
				binaries: s.LearntBinaries(),
			}
			if opts.WithProof {
				sw.Flush()
				ws.segment = append([]byte(nil), seg.Bytes()...)
			}
			workers[id] = ws
		}(w)
	}
	wg.Wait()

	mergeWorkers(res, workers)
	var segments [][]byte
	if opts.WithProof {
		for i := range workers {
			segments = append(segments, workers[i].segment)
		}
	}
	mergeOutcomes(res, tree, outcomes, segments, opts.WithProof)
	return res
}

// mergeWorkers folds the per-worker summaries into the result: counter
// totals, per-worker stats, and a first-seen-ordered union of the fact
// harvest. Deterministic for one worker; worker-timing-dependent (but
// input-sound) otherwise.
func mergeWorkers(res *Result, workers []workerState) {
	seenUnit := make(map[cnf.Lit]bool)
	seenBin := make(map[[2]cnf.Lit]bool)
	for _, ws := range workers {
		res.WorkerStats = append(res.WorkerStats, ws.stats)
		res.Conflicts += ws.stats.Conflicts
		res.Decisions += ws.stats.Decisions
		res.Propagations += ws.stats.Propagations
		res.SharedExported += ws.stats.SharedExported
		res.SharedImported += ws.stats.SharedImported
		for _, u := range ws.units {
			if !seenUnit[u] {
				seenUnit[u] = true
				res.Units = append(res.Units, u)
			}
		}
		for _, b := range ws.binaries {
			if len(b) != 2 {
				continue
			}
			k := [2]cnf.Lit{b[0], b[1]}
			if !seenBin[k] {
				seenBin[k] = true
				res.Binaries = append(res.Binaries, b)
			}
		}
	}
}

// mergeOutcomes derives the verdict: the lowest-index satisfiable cube
// wins with its model; otherwise UNSAT needs every open cube refuted (or
// one outright refutation), and the proof is stitched; anything else is
// Unknown.
func mergeOutcomes(res *Result, tree *Tree, outcomes []cubeOutcome, segments [][]byte, withProof bool) {
	outright := false
	allRefuted := true
	for i := range outcomes {
		switch outcomes[i].status {
		case sat.Sat:
			if res.Status != sat.Sat {
				res.Status = sat.Sat
				res.Model = outcomes[i].model
				res.SatCube = i
			}
		case sat.Unsat:
			res.Refuted++
			if outcomes[i].outright {
				outright = true
			}
		default:
			allRefuted = false
		}
	}
	if res.Status == sat.Sat {
		return
	}
	if outright || allRefuted {
		res.Status = sat.Unsat
		if withProof {
			failed := make([][]cnf.Lit, len(outcomes))
			for i := range outcomes {
				failed[i] = outcomes[i].failed
			}
			res.Proof = stitch(tree, segments, failed)
		}
	}
}
