// Lint fixture for the verdictcheck analyzer: verification verdicts must
// flow into a return, branch, or ledger — never be discarded.
package core

import "fixture/internal/proof"

type model struct{ bits []bool }

// Eval is the fixture's verification predicate.
func (m *model) Eval(i int) bool {
	return i >= 0 && i < len(m.bits) && m.bits[i]
}

type ledger struct {
	last    *proof.CheckResult
	verdict bool
}

// badDiscardCheck drops the proof verdict on the floor.
func badDiscardCheck(steps int) {
	proof.Check(steps) // want verdictcheck "proof.Check verdict discarded"
}

// badBlankCheck assigns every result to blank.
func badBlankCheck(steps int) {
	_, _ = proof.Check(steps) // want verdictcheck "assigned entirely to blank"
}

// badDeadStore assigns the verdict to a local that is never read again:
// the only read of ok happens before the verification.
func badDeadStore(m *model, i int) bool {
	ok := false
	old := ok
	ok = m.Eval(i) // want verdictcheck "but never read"
	return old
}

// badDiscardCertificate drops a constructed certificate.
func badDiscardCertificate() {
	proof.NewCertificate("unsat") // want verdictcheck "NewCertificate certificate verdict discarded"
}

// badDeferredVerify discards the report through defer.
func badDeferredVerify(n int) {
	defer proof.VerifyFacts(n) // want verdictcheck "discarded by defer"
}

// goodBranch threads the verdict into a branch.
func goodBranch(m *model, i int) error {
	if !m.Eval(i) {
		return errFailed
	}
	return nil
}

// goodReturn returns the verdict.
func goodReturn(steps int) (*proof.CheckResult, error) {
	return proof.Check(steps)
}

// goodLedger stores the verdict in a ledger field.
func (l *ledger) goodLedger(steps int) {
	res, err := proof.Check(steps)
	if err != nil {
		return
	}
	l.last = res
	l.verdict = res.Verified
}

// goodErrOnly keeps the error leg and branches on the report.
func goodErrOnly(n int) bool {
	rep := proof.VerifyFacts(n)
	return rep.OK
}

var errFailed = errorString("verification failed")

type errorString string

func (e errorString) Error() string { return string(e) }
