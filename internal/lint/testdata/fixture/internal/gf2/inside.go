// Package gf2 is a lint fixture for the gf2pack analyzer's inside rule:
// within internal/gf2, tail-word masks derived from the column count must
// go through lastWordMask.
package gf2

const wordBits = 64

// lastWordMask is the named helper; its own arithmetic is exempt.
func lastWordMask(cols int) uint64 {
	if r := uint(cols) % wordBits; r != 0 {
		return 1<<r - 1
	}
	return ^uint64(0)
}

// badInlineMask recomputes the tail mask inline.
func badInlineMask(cols int) uint64 {
	if r := uint(cols) % 64; r != 0 { // want gf2pack "inline tail-word mask"
		return 1<<r - 1
	}
	return ^uint64(0)
}

// bitIndex is ordinary word-packing on a bit position, not the column
// count: clean inside gf2.
func bitIndex(row []uint64, c int) bool {
	return row[c/wordBits]>>(uint(c)%wordBits)&1 == 1
}
