package simp

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func bruteForce(f *cnf.Formula) bool {
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		if f.Eval(func(v cnf.Var) bool { return mask>>uint(v)&1 == 1 }) {
			return true
		}
	}
	return false
}

func TestUnitPropagation(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(cnf.MkLit(0, false))                     // v0
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false)) // ¬v0 ∨ v1 => v1
	f.AddClause(cnf.MkLit(1, true), cnf.MkLit(2, false)) // ¬v1 ∨ v2 => v2
	res := Preprocess(f, DefaultOptions())
	if res.Unsat {
		t.Fatal("satisfiable chain reported UNSAT")
	}
	model := res.Reconstructor.Extend(make([]bool, 3))
	if !model[0] || !model[1] || !model[2] {
		t.Fatalf("unit chain model = %v, want all true", model)
	}
}

func TestUnsatDetected(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(cnf.MkLit(0, false))
	f.AddClause(cnf.MkLit(0, true))
	res := Preprocess(f, DefaultOptions())
	if !res.Unsat {
		t.Fatal("x ∧ ¬x not detected")
	}
}

func TestSubsumption(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false), cnf.MkLit(2, false))
	res := Preprocess(f, Options{MaxResolventLen: 100, MaxOccurrences: 0, MaxRounds: 2})
	if res.Unsat {
		t.Fatal("unexpected UNSAT")
	}
	if res.Subsumed != 1 {
		t.Fatalf("subsumed = %d, want 1", res.Subsumed)
	}
}

func TestStrengthening(t *testing.T) {
	// (a ∨ b) and (¬a ∨ b ∨ c): resolving on a gives (b ∨ c), which
	// self-subsumes the second clause to (b ∨ c).
	f := cnf.NewFormula(3)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false), cnf.MkLit(2, false))
	res := Preprocess(f, Options{MaxResolventLen: 100, MaxOccurrences: 0, MaxRounds: 2})
	if res.Strengthened == 0 {
		t.Fatal("no strengthening performed")
	}
}

func TestVariableElimination(t *testing.T) {
	// v1 occurs twice; eliminating it resolves the clauses.
	f := cnf.NewFormula(3)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(1, true), cnf.MkLit(2, false))
	res := Preprocess(f, DefaultOptions())
	if res.Eliminated == 0 {
		t.Fatal("no variable eliminated")
	}
	// Solve the simplified formula and reconstruct.
	s := sat.NewDefault()
	s.AddFormula(res.Formula)
	if s.Solve() != sat.Sat {
		t.Fatal("simplified formula UNSAT")
	}
	m := s.Model()
	for len(m) < res.Formula.NumVars {
		m = append(m, false)
	}
	full := res.Reconstructor.Extend(m)
	if !f.Eval(func(v cnf.Var) bool { return full[v] }) {
		t.Fatalf("reconstructed model %v does not satisfy original", full)
	}
}

func TestXorVarsFrozen(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(1, true), cnf.MkLit(2, false))
	f.AddXor(true, 1, 2)
	res := Preprocess(f, DefaultOptions())
	if res.Unsat {
		t.Fatal("unexpected UNSAT")
	}
	if len(res.Formula.Xors) != 1 {
		t.Fatal("xor clause lost")
	}
	// v1 and v2 are frozen; only v0 could be eliminated.
	for _, g := range res.Reconstructor.stack {
		if g.v == 1 || g.v == 2 {
			t.Fatalf("frozen variable %d eliminated", g.v)
		}
	}
}

// The central property: preprocessing preserves satisfiability, and models
// of the simplified formula extend to models of the original.
func TestQuickEquisatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		nVars := 3 + rng.Intn(8)
		nClauses := 2 + rng.Intn(4*nVars)
		f := cnf.NewFormula(nVars)
		for i := 0; i < nClauses; i++ {
			k := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < k; j++ {
				c = append(c, cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1))
			}
			f.AddClause(c...)
		}
		want := bruteForce(f)
		res := Preprocess(f, DefaultOptions())
		if res.Unsat {
			if want {
				t.Fatalf("trial %d: SAT formula preprocessed to UNSAT", trial)
			}
			continue
		}
		s := sat.NewDefault()
		s.AddFormula(res.Formula)
		st := s.Solve()
		if (st == sat.Sat) != want {
			t.Fatalf("trial %d: original sat=%v, simplified %v", trial, want, st)
		}
		if st == sat.Sat {
			m := s.Model()
			for len(m) < nVars {
				m = append(m, false)
			}
			full := res.Reconstructor.Extend(m)
			if !f.Eval(func(v cnf.Var) bool { return full[v] }) {
				t.Fatalf("trial %d: reconstructed model does not satisfy original", trial)
			}
		}
	}
}

func TestPreprocessShrinks(t *testing.T) {
	// A formula with heavy redundancy should shrink substantially.
	f := cnf.NewFormula(10)
	for i := 0; i < 9; i++ {
		f.AddClause(cnf.MkLit(cnf.Var(i), false), cnf.MkLit(cnf.Var(i+1), true))
		f.AddClause(cnf.MkLit(cnf.Var(i), false), cnf.MkLit(cnf.Var(i+1), true), cnf.MkLit(cnf.Var((i+2)%10), false))
	}
	res := Preprocess(f, DefaultOptions())
	if res.Unsat {
		t.Fatal("unexpected UNSAT")
	}
	if len(res.Formula.Clauses) >= len(f.Clauses) {
		t.Fatalf("no shrink: %d -> %d clauses", len(f.Clauses), len(res.Formula.Clauses))
	}
}

func TestResultString(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	res := Preprocess(f, DefaultOptions())
	if res.String() == "" {
		t.Fatal("empty summary")
	}
}
