package core

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/anf"
	"repro/internal/gf2"
)

// ctxCanceled reports whether a (possibly nil) context has been cancelled
// — the shared interrupt probe of the technique implementations.
func ctxCanceled(ctx context.Context) bool {
	return ctx != nil && ctx.Err() != nil
}

// XLConfig parameterizes eXtended Linearization (§II-B).
type XLConfig struct {
	// M bounds the linearized size of the subsampled system: rows·cols ≲ 2^M.
	M int
	// DeltaM bounds the expansion: the expanded system stays ≲ 2^(M+DeltaM).
	DeltaM int
	// Deg is D, the maximum degree of the multiplier monomials (the paper
	// runs with D = 1: multiply by 1 and by each single variable).
	Deg int
	// Workers is the fan-out for the GF(2) elimination kernel (≤ 1 =
	// sequential). The result is identical for every value.
	Workers int
	// Context, when non-nil, cancels the pass: RunXL polls it at expansion
	// and elimination boundaries and returns nil facts promptly after
	// cancellation. A nil Context never cancels.
	Context context.Context
	// Rand drives the uniform subsampling.
	Rand *rand.Rand
}

// DefaultXLConfig returns the paper's §IV parameters, with M scaled to
// laptop runs (the paper's M=30 assumes a large-memory machine; results
// are insensitive for our instance sizes).
func DefaultXLConfig(rng *rand.Rand) XLConfig {
	return XLConfig{M: 20, DeltaM: 4, Deg: 1, Rand: rng}
}

// RunXL performs one XL pass over the system and returns the learnt facts:
// linear polynomials and monomial-plus-one polynomials read off the
// Gauss–Jordan-reduced linearization (Table I's "retained" rows).
func RunXL(sys *anf.System, cfg XLConfig) []anf.Poly {
	if cfg.Deg < 0 {
		cfg.Deg = 1
	}
	if ctxCanceled(cfg.Context) {
		return nil
	}
	polys := subsample(sys, cfg.M, cfg.Rand)
	if len(polys) == 0 {
		return nil
	}
	// Expand in ascending degree order by monomials up to degree D, while
	// the linearized size stays under 2^(M+DeltaM). All expanded
	// polynomials are interned into a pass-local monomial table as they are
	// produced, which both tracks the distinct-monomial count incrementally
	// (the old implementation re-counted from scratch) and pre-computes the
	// integer column IDs the linearization step indexes by.
	sort.SliceStable(polys, func(i, j int) bool { return polys[i].Deg() < polys[j].Deg() })
	limit := uint64(1) << uint(cfg.M+cfg.DeltaM)
	scratch := getLinScratch()
	defer putLinScratch(scratch)
	tab := scratch.tab
	expanded := make([]anf.Poly, 0, 2*len(polys))
	push := func(q anf.Poly) {
		expanded = append(expanded, q)
		scratch.ids = tab.AppendTermIDs(scratch.ids, q)
	}
	for _, p := range polys {
		push(p)
	}
	// Collect the variables of the sampled subsystem as degree-1
	// multipliers (D = 1); for D > 1, products of those variables.
	vars := collectVars(polys)
	multipliers := buildMultipliers(vars, cfg.Deg)
expansion:
	for _, p := range polys {
		if ctxCanceled(cfg.Context) {
			return nil
		}
		for _, m := range multipliers {
			q := p.MulMonomial(m)
			if q.IsZero() {
				continue
			}
			push(q)
			if uint64(len(expanded))*uint64(tab.Len()) > limit {
				break expansion
			}
		}
	}
	if ctxCanceled(cfg.Context) {
		return nil
	}
	var facts []anf.Poly
	for _, p := range gjeRowsIDs(expanded, scratch.ids, tab, cfg.Workers, scratch) {
		if p.IsLinear() || p.IsMonomialPlusOne() || p.IsOne() {
			facts = append(facts, p)
		}
	}
	return facts
}

// subsample uniformly picks equations until the linearized size
// (rows × distinct monomials) reaches about 2^M (§II-B: m′·n′ ≳ 2^M). The
// distinct-monomial count runs over the system's interned IDs — a bitmap
// probe per term instead of the string-keyed map the seed used.
func subsample(sys *anf.System, m int, rng *rand.Rand) []anf.Poly {
	all := sys.Polys()
	idxs := subsampleIdx(sys, m, rng)
	if len(idxs) == 0 {
		return nil
	}
	out := make([]anf.Poly, len(idxs))
	for i, idx := range idxs {
		out[i] = all[idx]
	}
	return out
}

// subsampleIdx is subsample returning indices into sys.Polys() instead of
// the polynomials, so provenance-tracking callers can attribute each
// sampled equation to its system slot. It consumes the RNG exactly as
// subsample does (one Perm call), keeping tracked and untracked runs on
// identical random streams.
func subsampleIdx(sys *anf.System, m int, rng *rand.Rand) []int {
	// Warm the table before snapshotting: MonoTable() rewrites the stored
	// polynomials with canonical interned terms, so the polys we pull carry
	// their IDs and every ID() below is an O(1) fast-path hit.
	tab := sys.MonoTable()
	all := sys.Polys()
	if len(all) == 0 {
		return nil
	}
	target := uint64(1) << uint(m)
	perm := rng.Perm(len(all))
	seen := make([]bool, tab.Len())
	distinct := 0
	var out []int
	for _, idx := range perm {
		p := all[idx]
		out = append(out, idx)
		for _, t := range p.Terms() {
			if id := tab.ID(t); !seen[id] {
				seen[id] = true
				distinct++
			}
		}
		if uint64(len(out))*uint64(distinct) >= target {
			break
		}
	}
	return out
}

// polysSlots maps sys.Polys() indices back to raw equation slots: entry k
// is the slot holding the k-th non-zero polynomial.
func polysSlots(sys *anf.System) []int {
	out := make([]int, 0, sys.RawLen())
	for i := 0; i < sys.RawLen(); i++ {
		if !sys.At(i).IsZero() {
			out = append(out, i)
		}
	}
	return out
}

func collectVars(polys []anf.Poly) []anf.Var {
	seen := map[anf.Var]struct{}{}
	for _, p := range polys {
		for _, v := range p.Vars() {
			seen[v] = struct{}{}
		}
	}
	out := make([]anf.Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildMultipliers returns all monomials of degree 1..deg over vars.
func buildMultipliers(vars []anf.Var, deg int) []anf.Monomial {
	var out []anf.Monomial
	var cur []anf.Var
	var rec func(start, d int)
	rec = func(start, d int) {
		if len(cur) > 0 {
			out = append(out, anf.NewMonomial(cur...))
		}
		if d == 0 {
			return
		}
		for i := start; i < len(vars); i++ {
			cur = append(cur, vars[i])
			rec(i+1, d-1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0, deg)
	return out
}

// RunXLProv is RunXL with provenance: the same subsample, expansion and
// reduction (the RREF of a matrix is unique, so the tracked plain
// elimination returns bit-identical rows to the M4R kernel RunXL uses),
// plus a witness per learnt fact expressing it as a GF(2) combination of
// multiplier·slot-polynomial products read off the elimination's ops
// matrix.
func RunXLProv(sys *anf.System, cfg XLConfig) []ProvFact {
	if cfg.Deg < 0 {
		cfg.Deg = 1
	}
	if ctxCanceled(cfg.Context) {
		return nil
	}
	idxs := subsampleIdx(sys, cfg.M, cfg.Rand)
	if len(idxs) == 0 {
		return nil
	}
	slots := polysSlots(sys)
	all := sys.Polys()
	type sampled struct {
		p    anf.Poly
		slot int
	}
	polys := make([]sampled, len(idxs))
	for i, idx := range idxs {
		polys[i] = sampled{p: all[idx], slot: slots[idx]}
	}
	// Mirror RunXL's stable degree sort; the comparator reads only the
	// polynomials, so co-sorting the slots preserves the permutation.
	sort.SliceStable(polys, func(i, j int) bool { return polys[i].p.Deg() < polys[j].p.Deg() })
	limit := uint64(1) << uint(cfg.M+cfg.DeltaM)
	scratch := getLinScratch()
	defer putLinScratch(scratch)
	tab := scratch.tab
	expanded := make([]anf.Poly, 0, 2*len(polys))
	type rowSrc struct {
		slot int
		mult anf.Monomial
	}
	srcs := make([]rowSrc, 0, 2*len(polys))
	push := func(q anf.Poly, slot int, mult anf.Monomial) {
		expanded = append(expanded, q)
		srcs = append(srcs, rowSrc{slot: slot, mult: mult})
		scratch.ids = tab.AppendTermIDs(scratch.ids, q)
	}
	one := anf.NewMonomial()
	for _, s := range polys {
		push(s.p, s.slot, one)
	}
	plain := make([]anf.Poly, len(polys))
	for i, s := range polys {
		plain[i] = s.p
	}
	vars := collectVars(plain)
	multipliers := buildMultipliers(vars, cfg.Deg)
expansion:
	for _, s := range polys {
		if ctxCanceled(cfg.Context) {
			return nil
		}
		for _, m := range multipliers {
			q := s.p.MulMonomial(m)
			if q.IsZero() {
				continue
			}
			push(q, s.slot, m)
			if uint64(len(expanded))*uint64(tab.Len()) > limit {
				break expansion
			}
		}
	}
	if ctxCanceled(cfg.Context) {
		return nil
	}
	rows, ops := gjeRowsIDsTracked(expanded, scratch.ids, tab, scratch)
	var facts []ProvFact
	for r, p := range rows {
		if !(p.IsLinear() || p.IsMonomialPlusOne() || p.IsOne()) {
			continue
		}
		var wit []SlotTerm
		for j := range expanded {
			if ops.Get(r, j) {
				wit = append(wit, SlotTerm{Mult: anf.FromMonomials(srcs[j].mult), Slot: srcs[j].slot})
			}
		}
		facts = append(facts, ProvFact{Poly: p, Witness: canonSlotTerms(wit), Note: "gje row"})
	}
	return facts
}

// gjeRows linearizes the polynomials (one column per distinct monomial,
// constant column last), runs Gauss–Jordan elimination with the M4R
// kernel, and returns every nonzero reduced row as a polynomial.
func gjeRows(polys []anf.Poly) []anf.Poly {
	return gjeRowsWorkers(polys, 0)
}

// gjeRowsWorkers is gjeRows with an explicit elimination fan-out. The
// interning table and ID buffers come from the pooled scratch: ElimLin
// calls this once per substitution round, and the reset-not-reallocate
// lifecycle keeps the rounds allocation-light.
func gjeRowsWorkers(polys []anf.Poly, workers int) []anf.Poly {
	scratch := getLinScratch()
	defer putLinScratch(scratch)
	tab := scratch.tab
	for _, p := range polys {
		scratch.ids = tab.AppendTermIDs(scratch.ids, p)
	}
	return gjeRowsIDs(polys, scratch.ids, tab, workers, scratch)
}

// gjeRowsIDs is the linearize→eliminate→extract kernel. ids holds the
// term IDs of every polynomial, concatenated in row order (row r owns the
// next polys[r].NumTerms() entries), with every ID already interned in
// tab — so each column index is an integer array lookup and the hot path
// does no string hashing at all.
func gjeRowsIDs(polys []anf.Poly, ids []uint32, tab *anf.MonoTable, workers int, s *linScratch) []anf.Poly {
	mat, order, monos := linearize(polys, ids, tab, s)
	rank := mat.RREFM4RWorkers(workers)
	return extractRows(mat, rank, order, monos)
}

// gjeRowsTracked is gjeRowsWorkers via the tracked plain elimination,
// returning the reduced rows together with the ops matrix attributing each
// row to a combination of the input polynomials. The reduced rows are
// bit-identical to the untracked kernel's (RREF is unique).
func gjeRowsTracked(polys []anf.Poly) ([]anf.Poly, *gf2.Matrix) {
	scratch := getLinScratch()
	defer putLinScratch(scratch)
	tab := scratch.tab
	for _, p := range polys {
		scratch.ids = tab.AppendTermIDs(scratch.ids, p)
	}
	return gjeRowsIDsTracked(polys, scratch.ids, tab, scratch)
}

// gjeRowsIDsTracked is gjeRowsIDs with row-operation tracking.
func gjeRowsIDsTracked(polys []anf.Poly, ids []uint32, tab *anf.MonoTable, s *linScratch) ([]anf.Poly, *gf2.Matrix) {
	mat, order, monos := linearize(polys, ids, tab, s)
	rank, ops := mat.RREFTracked()
	return extractRows(mat, rank, order, monos), ops
}

// linearize builds the GF(2) matrix of the polynomials: one column per
// distinct monomial, sorted descending (leading terms first) so the
// reduction eliminates high-degree monomials first, mirroring Table I.
func linearize(polys []anf.Poly, ids []uint32, tab *anf.MonoTable, s *linScratch) (*gf2.Matrix, []uint32, []anf.Monomial) {
	monos := tab.Monos()
	var order []uint32
	var col []int // monomial ID → matrix column
	if s != nil {
		order, col = s.orderBufs(len(monos))
	} else {
		order = make([]uint32, len(monos))
		col = make([]int, len(monos))
	}
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return monos[order[i]].Compare(monos[order[j]]) > 0
	})
	for c, id := range order {
		col[id] = c
	}
	mat := gf2.NewMatrix(len(polys), len(monos))
	pos := 0
	for r, p := range polys {
		row := mat.Row(r)
		for n := p.NumTerms(); n > 0; n-- {
			c := col[ids[pos]]
			pos++
			gf2.XorBit(row, c)
		}
	}
	return mat, order, monos
}

// extractRows reads the first rank reduced rows back into polynomials.
func extractRows(mat *gf2.Matrix, rank int, order []uint32, monos []anf.Monomial) []anf.Poly {
	out := make([]anf.Poly, 0, rank)
	var terms []anf.Monomial
	for r := 0; r < rank; r++ {
		terms = terms[:0]
		gf2.ForEachSetBit(mat.Row(r), func(c int) {
			if c < len(order) {
				terms = append(terms, monos[order[c]])
			}
		})
		// Ascending columns are descending monomials — already the
		// canonical Poly term order, so skip FromMonomials' sort.
		out = append(out, anf.FromSortedMonomials(terms))
	}
	return out
}
