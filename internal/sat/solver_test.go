package sat

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
)

// bruteForce decides satisfiability of a formula by enumeration; the test
// oracle for small instances.
func bruteForce(f *cnf.Formula) bool {
	if f.NumVars > 22 {
		panic("bruteForce: too many variables")
	}
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		assign := func(v cnf.Var) bool { return mask>>uint(v)&1 == 1 }
		if f.Eval(assign) {
			return true
		}
	}
	return false
}

func solveFormula(t *testing.T, f *cnf.Formula, profile Profile) (Status, *Solver) {
	t.Helper()
	s := New(DefaultOptions(profile))
	if !s.AddFormula(f) {
		return Unsat, s
	}
	return s.Solve(), s
}

func TestTrivialCases(t *testing.T) {
	s := NewDefault()
	if s.Solve() != Sat {
		t.Fatal("empty formula should be SAT")
	}
	s = NewDefault()
	v := s.NewVar()
	if !s.AddClause(cnf.MkLit(v, false)) {
		t.Fatal("unit clause rejected")
	}
	if s.AddClause(cnf.MkLit(v, true)) {
		t.Fatal("contradicting unit accepted")
	}
	if s.Solve() != Unsat {
		t.Fatal("x ∧ ¬x should be UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := NewDefault()
	if s.AddClause() {
		t.Fatal("empty clause should make the solver UNSAT")
	}
	if s.Solve() != Unsat {
		t.Fatal("empty clause should yield UNSAT")
	}
}

func TestSimpleSat(t *testing.T) {
	// (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b): forces a=1, b=1.
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false))
	s.AddClause(cnf.MkLit(a, true), cnf.MkLit(b, false))
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, true))
	if s.Solve() != Sat {
		t.Fatal("should be SAT")
	}
	if !s.Value(a) || !s.Value(b) {
		t.Fatalf("model = %v %v, want true true", s.Value(a), s.Value(b))
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons into n holes — classic UNSAT family that
	// requires real conflict learning.
	for _, n := range []int{2, 3, 4, 5} {
		f := pigeonhole(n+1, n)
		for _, p := range []Profile{ProfileMiniSat, ProfileLingeling, ProfileCMS} {
			st, _ := solveFormula(t, f, p)
			if st != Unsat {
				t.Fatalf("PHP(%d,%d) with %v = %v, want UNSAT", n+1, n, p, st)
			}
		}
	}
	// PHP(n, n) is SAT.
	f := pigeonhole(4, 4)
	if st, _ := solveFormula(t, f, ProfileMiniSat); st != Sat {
		t.Fatal("PHP(4,4) should be SAT")
	}
}

// pigeonhole builds the pigeonhole principle CNF: p pigeons, h holes.
func pigeonhole(p, h int) *cnf.Formula {
	f := cnf.NewFormula(p * h)
	at := func(pigeon, hole int) cnf.Var { return cnf.Var(pigeon*h + hole) }
	for i := 0; i < p; i++ {
		var c []cnf.Lit
		for j := 0; j < h; j++ {
			c = append(c, cnf.MkLit(at(i, j), false))
		}
		f.AddClause(c...)
	}
	for j := 0; j < h; j++ {
		for i1 := 0; i1 < p; i1++ {
			for i2 := i1 + 1; i2 < p; i2++ {
				f.AddClause(cnf.MkLit(at(i1, j), true), cnf.MkLit(at(i2, j), true))
			}
		}
	}
	return f
}

func randomFormula(rng *rand.Rand, nVars, nClauses, k int) *cnf.Formula {
	f := cnf.NewFormula(nVars)
	for i := 0; i < nClauses; i++ {
		var c []cnf.Lit
		for j := 0; j < k; j++ {
			c = append(c, cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1))
		}
		f.AddClause(c...)
	}
	return f
}

// TestRandom3SATAllProfiles fuzzes all three profiles against exhaustive
// enumeration on small random 3-SAT instances around the phase transition.
func TestRandom3SATAllProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 120; trial++ {
		nVars := 4 + rng.Intn(9)
		nClauses := int(4.3*float64(nVars)) + rng.Intn(5)
		f := randomFormula(rng, nVars, nClauses, 3)
		want := bruteForce(f)
		for _, p := range []Profile{ProfileMiniSat, ProfileLingeling, ProfileCMS} {
			st, s := solveFormula(t, f, p)
			if (st == Sat) != want {
				t.Fatalf("trial %d profile %v: got %v, brute force says sat=%v", trial, p, st, want)
			}
			if st == Sat {
				m := s.Model()
				if !f.Eval(func(v cnf.Var) bool { return m[v] }) {
					t.Fatalf("trial %d profile %v: model does not satisfy formula", trial, p)
				}
			}
		}
	}
}

func TestRandomXorSystems(t *testing.T) {
	// Random XOR systems: CMS handles them natively via GJE, the others via
	// clausal expansion. All must agree with brute force.
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 80; trial++ {
		nVars := 3 + rng.Intn(8)
		f := cnf.NewFormula(nVars)
		nXors := 2 + rng.Intn(nVars)
		for i := 0; i < nXors; i++ {
			k := 1 + rng.Intn(4)
			vs := make([]cnf.Var, k)
			for j := range vs {
				vs[j] = cnf.Var(rng.Intn(nVars))
			}
			f.AddXor(rng.Intn(2) == 1, vs...)
		}
		// A couple of ordinary clauses mixed in.
		for i := 0; i < rng.Intn(4); i++ {
			f.AddClause(cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1),
				cnf.MkLit(cnf.Var(rng.Intn(nVars)), rng.Intn(2) == 1))
		}
		want := bruteForce(f)
		for _, p := range []Profile{ProfileMiniSat, ProfileCMS} {
			st, s := solveFormula(t, f, p)
			if (st == Sat) != want {
				t.Fatalf("trial %d profile %v: got %v, want sat=%v", trial, p, st, want)
			}
			if st == Sat {
				m := s.Model()
				if !f.Eval(func(v cnf.Var) bool { return m[v] }) {
					t.Fatalf("trial %d profile %v: model violates xors", trial, p)
				}
			}
		}
	}
}

func TestXorChainUnsat(t *testing.T) {
	// x0⊕x1=1, x1⊕x2=1, ..., x(n-1)⊕x0=1 with odd n is UNSAT (odd cycle).
	for _, n := range []int{3, 5, 7, 9} {
		f := cnf.NewFormula(n)
		for i := 0; i < n; i++ {
			f.AddXor(true, cnf.Var(i), cnf.Var((i+1)%n))
		}
		for _, p := range []Profile{ProfileMiniSat, ProfileCMS} {
			if st, _ := solveFormula(t, f, p); st != Unsat {
				t.Fatalf("odd xor cycle n=%d profile %v not UNSAT", n, p)
			}
		}
		// With native parity off (PR-10), CMS routes every row to Gauss and
		// detects the cycle purely by elimination, without search conflicts.
		opts := DefaultOptions(ProfileCMS)
		opts.NativeXor = false
		s := New(opts)
		s.AddFormula(f)
		if s.Solve() != Unsat {
			t.Fatal("CMS failed odd cycle")
		}
		if s.Conflicts != 0 {
			t.Fatalf("CMS needed %d conflicts; GJE should find UNSAT directly", s.Conflicts)
		}
		// The native parity path (default) must reach the same verdict from
		// watch propagation alone.
		sn := New(DefaultOptions(ProfileCMS))
		sn.AddFormula(f)
		if sn.Solve() != Unsat {
			t.Fatal("native parity failed odd cycle")
		}
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard-enough pigeonhole exceeds a tiny conflict budget.
	f := pigeonhole(8, 7)
	s := New(DefaultOptions(ProfileMiniSat))
	s.AddFormula(f)
	if st := s.SolveLimited(5); st != Unknown {
		t.Fatalf("budget 5 on PHP(8,7) = %v, want UNKNOWN", st)
	}
	// With no budget it finishes.
	if st := s.SolveLimited(-1); st != Unsat {
		t.Fatal("PHP(8,7) should be UNSAT")
	}
}

func TestLearntHarvest(t *testing.T) {
	// After solving, learnt units are level-0 literals and learnt binaries
	// must be logically implied by the formula.
	rng := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 20; trial++ {
		nVars := 8 + rng.Intn(5)
		f := randomFormula(rng, nVars, int(4.2*float64(nVars)), 3)
		s := New(DefaultOptions(ProfileMiniSat))
		s.AddFormula(f)
		st := s.Solve()
		units := s.LearntUnits()
		bins := s.LearntBinaries()
		if st == Unsat {
			continue
		}
		// Every unit and binary must hold in every satisfying assignment.
		for mask := 0; mask < 1<<nVars; mask++ {
			assign := func(v cnf.Var) bool { return mask>>uint(v)&1 == 1 }
			if !f.Eval(assign) {
				continue
			}
			for _, u := range units {
				if assign(u.Var()) == u.Neg() {
					t.Fatalf("trial %d: learnt unit %v violated by a model", trial, u)
				}
			}
			for _, b := range bins {
				if (assign(b[0].Var()) == b[0].Neg()) && (assign(b[1].Var()) == b[1].Neg()) {
					t.Fatalf("trial %d: learnt binary %v violated by a model", trial, b)
				}
			}
		}
	}
}

func TestLubySequence(t *testing.T) {
	want := []uint64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(uint64(i)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestSimplify(t *testing.T) {
	s := NewDefault()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false))
	s.AddClause(cnf.MkLit(a, true), cnf.MkLit(b, false), cnf.MkLit(c, false))
	if !s.Simplify() {
		t.Fatal("Simplify failed")
	}
	if st := s.Solve(); st != Sat {
		t.Fatal("should stay SAT after Simplify")
	}
}

func TestIncrementalSolves(t *testing.T) {
	// Solve, add more clauses, solve again.
	s := NewDefault()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(cnf.MkLit(a, false), cnf.MkLit(b, false))
	if s.Solve() != Sat {
		t.Fatal("first solve")
	}
	s.AddClause(cnf.MkLit(a, true))
	if s.Solve() != Sat {
		t.Fatal("second solve")
	}
	if s.Value(a) {
		t.Fatal("a must now be false")
	}
	if !s.Value(b) {
		t.Fatal("b must now be true")
	}
	s.AddClause(cnf.MkLit(b, true))
	if s.Solve() != Unsat {
		t.Fatal("third solve should be UNSAT")
	}
}

func TestStatsPopulated(t *testing.T) {
	f := pigeonhole(6, 5)
	s := New(DefaultOptions(ProfileMiniSat))
	s.AddFormula(f)
	s.Solve()
	if s.Conflicts == 0 || s.Decisions == 0 || s.Propagations == 0 {
		t.Fatalf("stats empty: conflicts=%d decisions=%d props=%d", s.Conflicts, s.Decisions, s.Propagations)
	}
}

func BenchmarkSolvePigeonhole(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(DefaultOptions(ProfileMiniSat))
		s.AddFormula(pigeonhole(8, 7))
		if s.Solve() != Unsat {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	f := randomFormula(rng, 60, 255, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(DefaultOptions(ProfileMiniSat))
		s.AddFormula(f)
		s.Solve()
	}
}
