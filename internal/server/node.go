package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/cnf"
	"repro/internal/cube"
	"repro/internal/sat"
)

// NodeConfig shapes a cube worker node.
type NodeConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Poll is the idle sleep between empty /cube/next pulls. 0 = 100ms.
	Poll time.Duration
	// Solver configures the per-task solver. Zero value takes the MiniSat
	// profile defaults.
	Solver sat.Options
	// Log receives one line per settled task; nil silences it.
	Log *log.Logger
}

// Node is a pull-based cube worker: it long-polls the coordinator for
// CubeTasks, solves each on a fresh solver (stateless by design — the
// resulting proof segments are self-contained, so the coordinator can
// stitch them in any arrival order), and posts CubeResults back. It also
// serves /healthz and /metrics for its own observability.
type Node struct {
	cfg     NodeConfig
	metrics *Metrics
	client  *http.Client
	mux     *http.ServeMux
}

// NewNode builds a worker node for the given coordinator.
func NewNode(cfg NodeConfig) *Node {
	if cfg.Poll <= 0 {
		cfg.Poll = 100 * time.Millisecond
	}
	if cfg.Solver == (sat.Options{}) {
		cfg.Solver = sat.DefaultOptions(sat.ProfileMiniSat)
	}
	n := &Node{
		cfg:     cfg,
		metrics: NewMetrics(),
		client:  &http.Client{},
		mux:     http.NewServeMux(),
	}
	n.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok role=worker")
	})
	n.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, n.metrics.Render())
	})
	return n
}

// Metrics exposes the node's registry (NodeCubesSolved et al.).
func (n *Node) Metrics() *Metrics { return n.metrics }

// ServeHTTP serves the node's health/metrics endpoints.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// Run pulls and solves tasks until ctx is cancelled. Transport errors
// (coordinator restarting, network blips) degrade to the idle poll pace
// rather than failing the node.
func (n *Node) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		task, ok := n.next(ctx)
		if !ok {
			n.sleep(ctx)
			continue
		}
		res := n.solve(ctx, task)
		n.report(ctx, res)
	}
}

func (n *Node) sleep(ctx context.Context) {
	t := time.NewTimer(n.cfg.Poll)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// next pulls one task; ok is false when the queue is empty or the pull
// failed.
func (n *Node) next(ctx context.Context) (CubeTask, bool) {
	var task CubeTask
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.cfg.Coordinator+"/cube/next", nil)
	if err != nil {
		return task, false
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return task, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return task, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&task); err != nil {
		return task, false
	}
	return task, true
}

// solve runs one task on a fresh solver.
func (n *Node) solve(ctx context.Context, task CubeTask) CubeResult {
	res := CubeResult{JobID: task.JobID, Cube: task.Cube, Status: "UNKNOWN"}
	f, err := cnf.ReadDimacs(strings.NewReader(task.Formula))
	if err != nil {
		n.logf("task %s/%d: bad formula: %v", task.JobID, task.Cube, err)
		return res
	}
	assumps := make([]cnf.Lit, 0, len(task.Assumptions))
	for _, d := range task.Assumptions {
		l, err := cnf.LitFromDimacs(d)
		if err != nil {
			n.logf("task %s/%d: bad assumption %d", task.JobID, task.Cube, d)
			return res
		}
		assumps = append(assumps, l)
	}

	s := sat.New(n.cfg.Solver)
	var seg bytes.Buffer
	var sw cube.SegmentWriter
	if task.WithProof {
		// Before AddFormula, so an insertion-time contradiction logs its
		// empty clause into the segment.
		sw = cube.NewSegmentWriter(&seg)
		s.SetProof(sw)
	}
	ok := s.AddFormula(f)
	if task.TimeoutMS > 0 {
		s.SetDeadline(time.Now().Add(time.Duration(task.TimeoutMS) * time.Millisecond))
	}
	s.SetInterrupt(func() bool { return ctx.Err() != nil })

	st := sat.Unsat
	if ok {
		st = s.SolveAssuming(assumps, -1)
	}
	switch st {
	case sat.Sat:
		res.Status = "SAT"
		res.Model = s.Model()
	case sat.Unsat:
		res.Status = "UNSAT"
		res.Outright = !s.Okay()
		for _, l := range s.FailedAssumptions() {
			res.Failed = append(res.Failed, l.Dimacs())
		}
		if task.WithProof {
			sw.Flush()
			res.Proof = seg.String()
		}
	}
	if res.Status != "UNKNOWN" {
		n.metrics.NodeCubesSolved.Add(1)
	}
	n.logf("task %s/%d: %s", task.JobID, task.Cube, res.Status)
	return res
}

// report posts the result back; failures are logged and dropped (the
// coordinator's job deadline handles the loss).
func (n *Node) report(ctx context.Context, res CubeResult) {
	body, err := json.Marshal(res)
	if err != nil {
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		n.cfg.Coordinator+"/cube/result", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		n.logf("report %s/%d failed: %v", res.JobID, res.Cube, err)
		return
	}
	resp.Body.Close()
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Log != nil {
		n.cfg.Log.Printf(format, args...)
	}
}
