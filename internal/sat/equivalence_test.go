package sat

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cnf"
	"repro/internal/satgen"
)

// The seed-vs-arena equivalence regression: the arena clause store is a
// representation change only, so for a fixed seed the solver must produce
// the exact verdicts, models, counter values (conflicts, decisions,
// propagations, restarts, reduceDBs) and learnt-fact harvest the
// pointer-based seed solver produced. The golden file was captured from
// the seed solver (the commit before the arena landed) with
//
//	go test ./internal/sat -run TestSeedEquivalence -update-golden
//
// and must never be regenerated as a side effect of solver changes: a
// diff here means the refactor changed search behavior, which is a bug by
// this PR's definition even if the verdict is still correct.
//
// Deliberate regeneration (PR-10): DefaultOptions now sets NativeXor, so
// the xor-bearing cases route AddXor through the native parity-clause
// kind instead of the clausal cut (minisat profile) or the Gauss side-car
// (cryptominisat profile). That legitimately changes the propagation
// order and counters of exactly those cases — xor-native-v24 — and the
// golden was re-captured with -update-golden after verifying the new
// records agree with the CNF-cut baseline on verdict and model validity
// (TestNativeXorDifferential covers that equivalence continuously). All
// purely clausal cases are bit-identical to the seed capture.

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/equivalence_golden.json from the current solver")

type equivRecord struct {
	Name    string `json:"name"`
	Profile string `json:"profile"`
	Verdict string `json:"verdict"`
	// Model is the satisfying assignment as a 0/1 string ("" unless SAT).
	Model string `json:"model,omitempty"`
	// Counter snapshot after the solve.
	Conflicts    uint64 `json:"conflicts"`
	Decisions    uint64 `json:"decisions"`
	Propagations uint64 `json:"propagations"`
	Restarts     uint64 `json:"restarts"`
	ReducedDBs   uint64 `json:"reduce_dbs"`
	Clauses      int    `json:"clauses"`
	Learnts      int    `json:"learnts"`
	// Learnt-fact harvest: level-0 units in DIMACS form, and a digest of
	// the learnt binary clauses in learning order.
	Units       []int  `json:"units,omitempty"`
	BinCount    int    `json:"bin_count"`
	BinDigest   uint64 `json:"bin_digest"`
	FailedAssum []int  `json:"failed_assumptions,omitempty"`
	ProbeUnits  int    `json:"probe_units,omitempty"`
	ProbeEquivs int    `json:"probe_equivs,omitempty"`
	Models      int    `json:"models,omitempty"`
}

type equivCase struct {
	name     string
	profiles []Profile
	build    func() *cnf.Formula
	budget   int64
	// mode selects the solve entry point, covering the assume, probe and
	// enumerate paths alongside plain search.
	mode        string // "solve", "assume", "probe", "enumerate"
	assumptions []cnf.Lit
}

func equivalenceCases() []equivCase {
	mini := []Profile{ProfileMiniSat}
	all := []Profile{ProfileMiniSat, ProfileLingeling, ProfileCMS}
	return []equivCase{
		{name: "chain-2000", profiles: mini, mode: "solve", budget: -1,
			build: func() *cnf.Formula {
				f := cnf.NewFormula(2000)
				for i := 0; i+1 < 2000; i++ {
					f.AddClause(cnf.MkLit(cnf.Var(i), true), cnf.MkLit(cnf.Var(i+1), false))
				}
				f.AddClause(cnf.MkLit(0, false))
				return f
			}},
		{name: "php-7-6", profiles: all, mode: "solve", budget: -1,
			build: func() *cnf.Formula { return satgen.Pigeonhole(7, 6).Formula }},
		{name: "php-8-7", profiles: mini, mode: "solve", budget: -1,
			build: func() *cnf.Formula { return satgen.Pigeonhole(8, 7).Formula }},
		{name: "rand3sat-v80-s21", profiles: all, mode: "solve", budget: 20000,
			build: func() *cnf.Formula {
				return satgen.RandomKSAT(80, 3, 4.26, rand.New(rand.NewSource(21))).Formula
			}},
		{name: "rand3sat-v80-s22", profiles: mini, mode: "solve", budget: 20000,
			build: func() *cnf.Formula {
				return satgen.RandomKSAT(80, 3, 4.26, rand.New(rand.NewSource(22))).Formula
			}},
		{name: "parity-planted-v64", profiles: all, mode: "solve", budget: -1,
			build: func() *cnf.Formula {
				return satgen.ParityChain(64, 56, 3, true, rand.New(rand.NewSource(23))).Formula
			}},
		{name: "lfsr-sat-n12-s24", profiles: []Profile{ProfileMiniSat, ProfileCMS}, mode: "solve", budget: -1,
			build: func() *cnf.Formula {
				return satgen.LFSRReach(12, 24, false, rand.New(rand.NewSource(24))).Formula
			}},
		{name: "lfsr-unsat-n10-s16", profiles: mini, mode: "solve", budget: -1,
			build: func() *cnf.Formula {
				return satgen.LFSRReach(10, 16, true, rand.New(rand.NewSource(25))).Formula
			}},
		{name: "xor-native-v24", profiles: []Profile{ProfileMiniSat, ProfileCMS}, mode: "solve", budget: -1,
			build: buildXorMix},
		{name: "mutilated-5", profiles: mini, mode: "solve", budget: -1,
			build: func() *cnf.Formula { return satgen.MutilatedChessboard(5).Formula }},
		{name: "assume-php-7-7", profiles: mini, mode: "assume", budget: -1,
			build: func() *cnf.Formula { return satgen.Pigeonhole(7, 7).Formula },
			assumptions: []cnf.Lit{
				cnf.MkLit(0, false), cnf.MkLit(8, false), cnf.MkLit(16, false),
				cnf.MkLit(24, true), cnf.MkLit(25, true), cnf.MkLit(26, true),
				cnf.MkLit(27, true), cnf.MkLit(28, true), cnf.MkLit(29, true),
				cnf.MkLit(30, true),
			}},
		{name: "probe-lfsr-n10-s12", profiles: []Profile{ProfileMiniSat, ProfileCMS}, mode: "probe", budget: -1,
			build: func() *cnf.Formula {
				return satgen.LFSRReach(10, 12, false, rand.New(rand.NewSource(26))).Formula
			}},
		{name: "enumerate-color-n10", profiles: mini, mode: "enumerate", budget: -1,
			build: func() *cnf.Formula {
				return satgen.GraphColoring(10, 3, 0.25, rand.New(rand.NewSource(27))).Formula
			}},
	}
}

// buildXorMix mixes clauses with native XOR rows so the CMS profile's
// Gauss component (and the MiniSat profile's clausal XOR fallback) both
// land in the golden set.
func buildXorMix() *cnf.Formula {
	rng := rand.New(rand.NewSource(28))
	f := cnf.NewFormula(24)
	for i := 0; i < 20; i++ {
		a, b, c := rng.Intn(24), rng.Intn(24), rng.Intn(24)
		f.AddClause(cnf.MkLit(cnf.Var(a), rng.Intn(2) == 1),
			cnf.MkLit(cnf.Var(b), rng.Intn(2) == 1),
			cnf.MkLit(cnf.Var(c), rng.Intn(2) == 1))
	}
	for i := 0; i < 10; i++ {
		vs := []cnf.Var{cnf.Var(rng.Intn(24)), cnf.Var(rng.Intn(24)), cnf.Var(rng.Intn(24)), cnf.Var(rng.Intn(24))}
		f.AddXor(rng.Intn(2) == 1, vs...)
	}
	return f
}

func runEquivCase(c equivCase, p Profile) equivRecord {
	s := New(DefaultOptions(p))
	rec := equivRecord{Name: c.name, Profile: p.String()}
	loaded := s.AddFormula(c.build())
	var st Status
	switch {
	case !loaded:
		st = Unsat
	case c.mode == "assume":
		st = s.SolveAssuming(c.assumptions, c.budget)
		for _, l := range s.FailedAssumptions() {
			rec.FailedAssum = append(rec.FailedAssum, l.Dimacs())
		}
	case c.mode == "probe":
		res := s.ProbeLiterals(0)
		rec.ProbeUnits = len(res.Units)
		rec.ProbeEquivs = len(res.Equivalences)
		st = s.SolveLimited(c.budget)
	case c.mode == "enumerate":
		models := s.EnumerateModels(0, 40)
		rec.Models = len(models)
		st = Unknown
		if !s.Okay() {
			st = Unsat
		}
	default:
		st = s.SolveLimited(c.budget)
	}
	rec.Verdict = st.String()
	if st == Sat {
		m := s.Model()
		buf := make([]byte, len(m))
		for i, b := range m {
			buf[i] = '0'
			if b {
				buf[i] = '1'
			}
		}
		rec.Model = string(buf)
	}
	snap := s.Snapshot()
	rec.Conflicts = snap.Conflicts
	rec.Decisions = snap.Decisions
	rec.Propagations = snap.Propagations
	rec.Restarts = snap.Restarts
	rec.ReducedDBs = snap.ReducedDBs
	rec.Clauses = snap.Clauses
	rec.Learnts = snap.Learnts
	for _, l := range s.LearntUnits() {
		rec.Units = append(rec.Units, l.Dimacs())
	}
	bins := s.LearntBinaries()
	rec.BinCount = len(bins)
	h := fnv.New64a()
	for _, b := range bins {
		for _, l := range b {
			fmt.Fprintf(h, "%d ", l.Dimacs())
		}
		fmt.Fprint(h, ";")
	}
	rec.BinDigest = h.Sum64()
	return rec
}

func TestSeedEquivalence(t *testing.T) {
	goldenPath := filepath.Join("testdata", "equivalence_golden.json")
	var got []equivRecord
	for _, c := range equivalenceCases() {
		for _, p := range c.profiles {
			got = append(got, runEquivCase(c, p))
		}
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %d records", len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (%v); run with -update-golden on the seed solver", err)
	}
	var want []equivRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d records, current run produced %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Name != g.Name || w.Profile != g.Profile {
			t.Fatalf("record %d: case order changed (%s/%s vs %s/%s)",
				i, w.Name, w.Profile, g.Name, g.Profile)
		}
		wj, _ := json.Marshal(w)
		gj, _ := json.Marshal(g)
		if string(wj) != string(gj) {
			t.Errorf("%s/%s diverged from the seed solver:\n  seed:  %s\n  arena: %s",
				w.Name, w.Profile, wj, gj)
		}
	}
}

// The same runs must also be self-consistent run over run (catches
// map-order or allocator-address leakage into search heuristics).
func TestEquivalenceRunsAreDeterministic(t *testing.T) {
	for _, c := range equivalenceCases()[:4] {
		p := c.profiles[0]
		a := runEquivCase(c, p)
		b := runEquivCase(c, p)
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			t.Fatalf("%s: two identical runs diverged:\n%s\n%s", c.name, aj, bj)
		}
	}
}
