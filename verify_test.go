package bosphorus

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end provenance: every instance under examples/instances flows
// through the full pipeline (both engine modes, solve and preprocess)
// with tracking on, and every fact in the resulting ledger must
// independently re-derive against the original system. check.sh runs
// this under -race, so the snapshot pipeline's concurrent provenance
// variants are exercised too.
func TestExamplesProvenanceVerifies(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("examples", "instances", "*.anf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no example instances found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []struct {
				name    string
				workers int
				solve   bool
			}{
				{"solve-seq", 0, true},
				{"preprocess-seq", 0, false},
				{"solve-pipeline", 2, true},
			} {
				sys, err := ParseANF(strings.NewReader(string(data)))
				if err != nil {
					t.Fatal(err)
				}
				opts := DefaultOptions()
				opts.Provenance = true
				opts.EmitProof = true
				opts.Workers = mode.workers
				var res *Result
				if mode.solve {
					res = Solve(sys, opts)
				} else {
					res = Preprocess(sys, opts)
				}
				if res.Provenance == nil {
					t.Fatalf("%s: no ledger", mode.name)
				}
				report := VerifyFacts(sys, res.Provenance, VerifyOptions{Seed: 7})
				if !report.AllVerified() {
					for _, v := range report.Verdicts {
						if !v.Verdict.Verified() {
							t.Errorf("%s: fact %d (%s, iter %d): %v — %s",
								mode.name, v.ID, v.Technique, v.Iteration, v.Verdict, v.Detail)
						}
					}
					t.Fatalf("%s: %s", mode.name, report.Summary())
				}
				if res.Certificate != nil {
					cr, err := res.Certificate.Check()
					if err != nil || !cr.Verified {
						t.Fatalf("%s: certificate rejected: %+v err=%v", mode.name, cr, err)
					}
				}
				if strings.HasPrefix(filepath.Base(path), "unsat") && res.Status != UNSAT {
					t.Fatalf("%s: status %v on an unsat instance", mode.name, res.Status)
				}
			}
		})
	}
}
