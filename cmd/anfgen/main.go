// Command anfgen generates the paper's benchmark instances (appendix):
// round-reduced small-scale AES (SR), round-reduced Simon32/64, weakened
// Bitcoin nonce finding, and the SAT-2017-substitute CNF suite.
//
// Usage:
//
//	anfgen -family sr -n 1 -r 2 -c 2 -e 4 -count 3 -dir out/
//	anfgen -family simon -plaintexts 8 -rounds 6 -count 5 -dir out/
//	anfgen -family bitcoin -k 8 -rounds 16 -count 2 -dir out/
//	anfgen -family sat2017 -count 4 -dir out/
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/anf"
	"repro/internal/ciphers/sha256"
	"repro/internal/ciphers/simon"
	"repro/internal/ciphers/speck"
	"repro/internal/ciphers/sr"
	"repro/internal/cnf"
	"repro/internal/satgen"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "anfgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("anfgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family = fs.String("family", "sr", "instance family: sr | simon | speck | bitcoin | sat2017")
		dir    = fs.String("dir", ".", "output directory")
		count  = fs.Int("count", 1, "number of instances")
		seed   = fs.Int64("seed", 1, "random seed")

		n = fs.Int("n", 1, "sr: rounds")
		r = fs.Int("r", 2, "sr: state rows")
		c = fs.Int("c", 2, "sr: state columns")
		e = fs.Int("e", 4, "sr: field bits (4 or 8)")

		plaintexts = fs.Int("plaintexts", 8, "simon: number of plaintexts")
		rounds     = fs.Int("rounds", 6, "simon/bitcoin: rounds")

		k = fs.Int("k", 8, "bitcoin: leading zero bits")

		scale = fs.Int("scale", 1, "sat2017: size multiplier")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	writeANF := func(name string, sys *anf.System) error {
		path := filepath.Join(*dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := anf.WriteSystem(f, sys); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s (%d vars, %d equations)\n", path, sys.NumVars(), sys.Len())
		return nil
	}

	switch *family {
	case "sr":
		p := sr.Params{N: *n, R: *r, C: *c, E: *e}
		for i := 0; i < *count; i++ {
			inst := sr.GenerateInstance(p, rng)
			if err := writeANF(fmt.Sprintf("sr-%d-%d-%d-%d-%03d.anf", *n, *r, *c, *e, i), inst.Sys); err != nil {
				return err
			}
		}
	case "simon":
		p := simon.Params{NPlaintexts: *plaintexts, Rounds: *rounds}
		for i := 0; i < *count; i++ {
			inst := simon.GenerateInstance(p, rng)
			if err := writeANF(fmt.Sprintf("simon-%d-%d-%03d.anf", *plaintexts, *rounds, i), inst.Sys); err != nil {
				return err
			}
		}
	case "speck":
		p := speck.Params{NPlaintexts: *plaintexts, Rounds: *rounds}
		for i := 0; i < *count; i++ {
			inst := speck.GenerateInstance(p, rng)
			if err := writeANF(fmt.Sprintf("speck-%d-%d-%03d.anf", *plaintexts, *rounds, i), inst.Sys); err != nil {
				return err
			}
		}
	case "bitcoin":
		rr := *rounds
		if rr < 16 {
			rr = 16
		}
		p := sha256.BitcoinParams{K: *k, Rounds: rr}
		for i := 0; i < *count; i++ {
			inst := sha256.GenerateBitcoin(p, rng)
			if err := writeANF(fmt.Sprintf("bitcoin-%d-r%d-%03d.anf", *k, rr, i), inst.Sys); err != nil {
				return err
			}
		}
	case "sat2017":
		suite := satgen.Suite(satgen.SuiteConfig{Scale: *scale, PerFamily: *count, Seed: *seed})
		for _, inst := range suite {
			path := filepath.Join(*dir, inst.Name+".cnf")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := cnf.WriteDimacs(f, inst.Formula); err != nil {
				f.Close()
				return err
			}
			f.Close()
			fmt.Fprintf(stderr, "wrote %s (%s, ground truth %v)\n", path, inst.Formula.Stats(), inst.Status)
		}
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	return nil
}
