package sat

import "repro/internal/cnf"

// varHeap is an indexed max-heap of variables ordered by VSIDS activity,
// the solver's decision queue.
type varHeap struct {
	s     *Solver
	heap  []cnf.Var
	index []int // position of each var in heap, -1 if absent
}

func (h *varHeap) less(a, b cnf.Var) bool {
	return h.s.activity[a] > h.s.activity[b]
}

func (h *varHeap) ensure(v cnf.Var) {
	for len(h.index) <= int(v) {
		h.index = append(h.index, -1)
	}
}

func (h *varHeap) contains(v cnf.Var) bool {
	return int(v) < len(h.index) && h.index[v] >= 0
}

func (h *varHeap) insert(v cnf.Var) {
	h.ensure(v)
	if h.contains(v) {
		return
	}
	h.index[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.up(h.index[v])
}

// update restores heap order after v's activity increased.
//
//bosphorus:hotpath activity-ordered heap maintenance
func (h *varHeap) update(v cnf.Var) {
	if h.contains(v) {
		h.up(h.index[v])
	}
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

// removeMax pops the most active variable.
//
//bosphorus:hotpath activity-ordered heap maintenance
func (h *varHeap) removeMax() cnf.Var {
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap[0] = last
	h.index[last] = 0
	h.heap = h.heap[:len(h.heap)-1]
	h.index[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top
}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.index[h.heap[i]] = i
		i = parent
	}
	h.heap[i] = v
	h.index[v] = i
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	for {
		left := 2*i + 1
		if left >= len(h.heap) {
			break
		}
		best := left
		if right := left + 1; right < len(h.heap) && h.less(h.heap[right], h.heap[left]) {
			best = right
		}
		if !h.less(h.heap[best], v) {
			break
		}
		h.heap[i] = h.heap[best]
		h.index[h.heap[i]] = i
		i = best
	}
	h.heap[i] = v
	h.index[v] = i
}
