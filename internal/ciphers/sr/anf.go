package sr

import (
	"math/rand"

	"repro/internal/anf"
	"repro/internal/gf2"
)

// TemplateEq is an implicit equation of an S-box over abstract bit indices:
// input bits are 0..e-1, output bits are e..2e-1. Each term is a sorted
// list of template indices; the empty term is the constant 1.
type TemplateEq [][]int

// ImplicitQuadratics derives all GF(2) equations of degree ≤ 2 satisfied
// by every (x, S(x)) pair of the S-box, as the right null space of the
// monomial evaluation matrix. This reproduces, automatically for any
// S-box, the classic "39 quadratic equations of the AES S-box"
// construction that the algebraic SR systems are built from.
func ImplicitQuadratics(table []uint16, e int) []TemplateEq {
	nv := 2 * e
	// Monomials of degree ≤ 2 over nv variables.
	var monos [][]int
	monos = append(monos, nil) // constant 1
	for i := 0; i < nv; i++ {
		monos = append(monos, []int{i})
	}
	for i := 0; i < nv; i++ {
		for j := i + 1; j < nv; j++ {
			monos = append(monos, []int{i, j})
		}
	}
	bit := func(x uint16, i int) bool { return x>>uint(i)&1 == 1 }
	m := gf2.NewMatrix(len(table), len(monos))
	for x, y := range table {
		val := func(idx int) bool {
			if idx < e {
				return bit(uint16(x), idx)
			}
			return bit(y, idx-e)
		}
		for c, mono := range monos {
			v := true
			for _, i := range mono {
				v = v && val(i)
			}
			if v {
				m.Set(x, c, true)
			}
		}
	}
	basis := m.NullSpace()
	out := make([]TemplateEq, 0, len(basis))
	for _, vec := range basis {
		var eq TemplateEq
		for c, mono := range monos {
			if vec.Get(0, c) {
				eq = append(eq, mono)
			}
		}
		out = append(out, eq)
	}
	return out
}

// Instantiate renders the template as a polynomial, mapping template input
// bit i to variable in[i] and output bit j to out[j].
func (t TemplateEq) Instantiate(in, out []anf.Var) anf.Poly {
	e := len(in)
	terms := make([]anf.Monomial, 0, len(t))
	for _, mono := range t {
		vs := make([]anf.Var, len(mono))
		for k, idx := range mono {
			if idx < e {
				vs[k] = in[idx]
			} else {
				vs[k] = out[idx-e]
			}
		}
		terms = append(terms, anf.NewMonomial(vs...))
	}
	return anf.FromMonomials(terms...)
}

// Encoding is the symbolic bit-level ANF encoding of an SR instance. All
// offsets are bit-variable indices into the system.
type Encoding struct {
	Cipher *Cipher
	Sys    *anf.System

	// Variable block offsets (each block is Elements()*E bits unless
	// noted): plaintext, ciphertext, subkeys (n+1 blocks), S-box inputs
	// and outputs (n blocks each), key-schedule S-box outputs (n blocks of
	// R*E bits).
	POff, COff, KOff, XOff, YOff, ZOff int
	NumVars                            int
}

// elemBits returns the e bit-variables of element elem in the block at
// offset off.
func (enc *Encoding) elemBits(off, elem int) []anf.Var {
	e := enc.Cipher.P.E
	out := make([]anf.Var, e)
	for i := 0; i < e; i++ {
		out[i] = anf.Var(off + elem*e + i)
	}
	return out
}

// kBits returns the bits of subkey i, element elem.
func (enc *Encoding) kBits(i, elem int) []anf.Var {
	se := enc.Cipher.P.Elements() * enc.Cipher.P.E
	return enc.elemBits(enc.KOff+i*se, elem)
}

// xBits / yBits return S-box input/output bits for round rnd (1-based).
func (enc *Encoding) xBits(rnd, elem int) []anf.Var {
	se := enc.Cipher.P.Elements() * enc.Cipher.P.E
	return enc.elemBits(enc.XOff+(rnd-1)*se, elem)
}

func (enc *Encoding) yBits(rnd, elem int) []anf.Var {
	se := enc.Cipher.P.Elements() * enc.Cipher.P.E
	return enc.elemBits(enc.YOff+(rnd-1)*se, elem)
}

// zBits returns key-schedule S-box output bits for round rnd (1-based),
// row row.
func (enc *Encoding) zBits(rnd, row int) []anf.Var {
	re := enc.Cipher.P.R * enc.Cipher.P.E
	return enc.elemBits(enc.ZOff+(rnd-1)*re, row)
}

// linear builds the polynomial v0 ⊕ v1 ⊕ ... ⊕ const.
func linear(vars []anf.Var, c bool) anf.Poly {
	terms := make([]anf.Monomial, 0, len(vars)+1)
	for _, v := range vars {
		terms = append(terms, anf.NewMonomial(v))
	}
	if c {
		terms = append(terms, anf.One)
	}
	return anf.FromMonomials(terms...)
}

// Encode builds the symbolic system (without plaintext/ciphertext
// assignments) with the classic implicit-quadratic S-box encoding. Layout
// and equation inventory are described in DESIGN.md; see EncodeStyle for
// the explicit-ANF alternative.
func Encode(c *Cipher) *Encoding { return EncodeStyle(c, StyleImplicit) }

// Instance is a concrete SR ANF problem: the symbolic system plus unit
// equations binding plaintext and ciphertext bits. Its unique-by-
// construction solution (the key and all intermediates) is retained as a
// testing witness.
type Instance struct {
	Enc     *Encoding
	Sys     *anf.System
	Plain   []uint16
	Key     []uint16
	CipherT []uint16
	Witness []bool
}

// GenerateInstance draws a random plaintext/key pair and produces the ANF
// instance in the appendix-A style: the symbolic equations plus bit
// assignments for P and C.
func GenerateInstance(p Params, rng *rand.Rand) *Instance {
	c := New(p)
	return buildInstance(c, Encode(c), rng)
}

// buildInstance binds a random plaintext/ciphertext pair into the
// symbolic encoding and assembles the witness.
func buildInstance(c *Cipher, enc *Encoding, rng *rand.Rand) *Instance {
	p := c.P
	plain := c.RandomBlock(rng)
	key := c.RandomBlock(rng)
	tr := c.EncryptTrace(plain, key)

	sys := enc.Sys.Clone()
	setBits := func(off, elem int, val uint16) {
		for b := 0; b < p.E; b++ {
			v := anf.Var(off + elem*p.E + b)
			sys.Add(anf.VarPoly(v).AddConstant(val>>uint(b)&1 == 1))
		}
	}
	for elem := 0; elem < p.Elements(); elem++ {
		setBits(enc.POff, elem, plain[elem])
		setBits(enc.COff, elem, tr.Cipher[elem])
	}

	// Build the witness assignment over all encoding variables.
	w := make([]bool, enc.NumVars)
	put := func(off, elem int, val uint16) {
		for b := 0; b < p.E; b++ {
			w[off+elem*p.E+b] = val>>uint(b)&1 == 1
		}
	}
	se := p.Elements() * p.E
	for elem := 0; elem < p.Elements(); elem++ {
		put(enc.POff, elem, plain[elem])
		put(enc.COff, elem, tr.Cipher[elem])
		for i := 0; i <= p.N; i++ {
			put(enc.KOff+i*se, elem, tr.SubKeys[i][elem])
		}
		for rnd := 1; rnd <= p.N; rnd++ {
			put(enc.XOff+(rnd-1)*se, elem, tr.SBoxIn[rnd-1][elem])
			put(enc.YOff+(rnd-1)*se, elem, tr.SBoxOut[rnd-1][elem])
		}
	}
	for rnd := 1; rnd <= p.N; rnd++ {
		for row := 0; row < p.R; row++ {
			put(enc.ZOff+(rnd-1)*p.R*p.E, row, tr.KSBoxOut[rnd-1][row])
		}
	}
	return &Instance{Enc: enc, Sys: sys, Plain: plain, Key: key, CipherT: tr.Cipher, Witness: w}
}

// KeyFromSolution extracts the master key elements from a satisfying
// assignment of the instance's variables.
func (inst *Instance) KeyFromSolution(sol []bool) []uint16 {
	p := inst.Enc.Cipher.P
	out := make([]uint16, p.Elements())
	for elem := 0; elem < p.Elements(); elem++ {
		var v uint16
		for b := 0; b < p.E; b++ {
			idx := inst.Enc.KOff + elem*p.E + b
			if idx < len(sol) && sol[idx] {
				v |= 1 << uint(b)
			}
		}
		out[elem] = v
	}
	return out
}
