package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifiedProof(t *testing.T) {
	dir := t.TempDir()
	cnfPath := writeFile(t, dir, "f.cnf", "p cnf 1 2\n1 0\n-1 0\n")
	proofPath := writeFile(t, dir, "p.drat", "0\n")
	for _, format := range []string{"auto", "text"} {
		var errw bytes.Buffer
		code, out := run([]string{"-cnf", cnfPath, "-format", format, proofPath}, &errw)
		if code != 0 || !strings.Contains(out, "s VERIFIED") {
			t.Fatalf("format %s: code=%d out=%q err=%q", format, code, out, errw.String())
		}
	}
}

func TestNotVerifiedProof(t *testing.T) {
	dir := t.TempDir()
	// Satisfiable formula: the empty clause is not RUP, so the add step
	// fails and the proof must be rejected.
	cnfPath := writeFile(t, dir, "f.cnf", "p cnf 2 2\n1 0\n2 0\n")
	proofPath := writeFile(t, dir, "p.drat", "0\n")
	var errw bytes.Buffer
	code, out := run([]string{"-cnf", cnfPath, proofPath}, &errw)
	if code != 1 || !strings.Contains(out, "s NOT VERIFIED") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestIncompleteProof(t *testing.T) {
	dir := t.TempDir()
	// Well-formed proof that never derives the empty clause: well-formed
	// but not a refutation → NOT VERIFIED, no error line.
	cnfPath := writeFile(t, dir, "f.cnf", "p cnf 2 2\n1 2 0\n-1 2 0\n")
	proofPath := writeFile(t, dir, "p.drat", "2 0\n")
	var errw bytes.Buffer
	code, out := run([]string{"-cnf", cnfPath, "-v", proofPath}, &errw)
	if code != 1 || !strings.Contains(out, "s NOT VERIFIED") {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "c steps=1 adds=1") {
		t.Fatalf("verbose counters missing: %q", out)
	}
}

func TestUsageErrors(t *testing.T) {
	dir := t.TempDir()
	cnfPath := writeFile(t, dir, "f.cnf", "p cnf 1 1\n1 0\n")
	proofPath := writeFile(t, dir, "p.drat", "0\n")
	cases := [][]string{
		{},                // no args
		{proofPath},       // missing -cnf
		{"-cnf", cnfPath}, // missing proof operand
		{"-cnf", cnfPath, "-format", "weird", proofPath}, // bad format
		{"-cnf", filepath.Join(dir, "missing.cnf"), proofPath},
	}
	for i, args := range cases {
		var errw bytes.Buffer
		if code, _ := run(args, &errw); code != 2 {
			t.Fatalf("case %d (%v): code=%d, want 2", i, args, code)
		}
	}
}
