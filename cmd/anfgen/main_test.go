package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/anf"
)

func TestGenerateSR(t *testing.T) {
	dir := t.TempDir()
	var errw bytes.Buffer
	if err := run([]string{"-family", "sr", "-n", "1", "-r", "2", "-c", "2", "-e", "4", "-count", "2", "-dir", dir}, &errw); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 2 {
		t.Fatalf("%d files written", len(entries))
	}
	f, err := os.Open(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sys, err := anf.ReadSystem(f)
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumVars() != 104 {
		t.Fatalf("SR(1,2,2,4) vars = %d, want 104", sys.NumVars())
	}
}

func TestGenerateSimonAndBitcoin(t *testing.T) {
	dir := t.TempDir()
	var errw bytes.Buffer
	if err := run([]string{"-family", "simon", "-plaintexts", "2", "-rounds", "4", "-count", "1", "-dir", dir}, &errw); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "bitcoin", "-k", "2", "-rounds", "16", "-count", "1", "-dir", dir}, &errw); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	names := []string{}
	for _, e := range entries {
		names = append(names, e.Name())
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "simon-2-4-000.anf") || !strings.Contains(joined, "bitcoin-2-r16-000.anf") {
		t.Fatalf("files: %v", names)
	}
}

func TestGenerateSAT2017(t *testing.T) {
	dir := t.TempDir()
	var errw bytes.Buffer
	if err := run([]string{"-family", "sat2017", "-count", "1", "-dir", dir}, &errw); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 6 { // one per generator family
		t.Fatalf("%d CNFs written, want 6", len(entries))
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".cnf") {
			t.Fatalf("unexpected file %s", e.Name())
		}
	}
}

func TestUnknownFamily(t *testing.T) {
	var errw bytes.Buffer
	if err := run([]string{"-family", "nope", "-dir", t.TempDir()}, &errw); err == nil {
		t.Fatal("unknown family accepted")
	}
}
