// Package portfolio runs several differently-configured CDCL solvers on
// the same formula concurrently and returns the first verdict — the
// standard parallel-portfolio construction (à la Plingeling, the parallel
// sibling of the paper's Lingeling column). Each worker gets its own
// solver instance (solvers are not goroutine-safe) with a distinct
// profile and seed; the winner's model is returned and the losers are
// interrupted.
package portfolio

import (
	"context"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/share"
	"repro/internal/walksat"
)

// Worker describes one portfolio member.
type Worker struct {
	// Name identifies the worker in the result.
	Name string
	// Options configures its solver.
	Options sat.Options
	// ConflictBudget bounds this worker's search (0 = unlimited). A
	// budgeted worker that exhausts its conflicts reports Unknown; the
	// portfolio keeps waiting for the others.
	ConflictBudget int64
	// WalkSAT, when non-nil, makes this member a local-search worker
	// instead of a CDCL solver: it runs walksat.Solve with these options
	// and reports Sat (model verified against the formula) or Unknown.
	// Incomplete but safe — it can never report a wrong verdict, so the
	// portfolio simply keeps waiting for the CDCL members on UNSAT
	// instances.
	WalkSAT *walksat.Options
}

// DefaultWorkers returns the three paper profiles with distinct seeds,
// plus a randomized-decision MiniSat variant and a WalkSAT local-search
// member for diversification on satisfiable-heavy traffic.
func DefaultWorkers() []Worker {
	ms := sat.DefaultOptions(sat.ProfileMiniSat)
	lg := sat.DefaultOptions(sat.ProfileLingeling)
	cms := sat.DefaultOptions(sat.ProfileCMS)
	rnd := sat.DefaultOptions(sat.ProfileMiniSat)
	rnd.RandomFreq = 0.02
	rnd.RandomSeed = 0xC0FFEE
	lg.RandomSeed = 0xBEEF
	cms.RandomSeed = 0xCAFE
	return []Worker{
		{Name: "minisat", Options: ms},
		{Name: "lingeling", Options: lg},
		{Name: "cryptominisat", Options: cms},
		{Name: "minisat-rnd", Options: rnd},
		{Name: "walksat", WalkSAT: &walksat.Options{Seed: 0x5EED, MaxFlips: 2_000_000}},
	}
}

// Stats carries the winning solver's final search counters, so service
// latency can be correlated with work done, not just wall-clock.
type Stats struct {
	Conflicts    uint64
	Decisions    uint64
	Propagations uint64
	Restarts     uint64
	// SharedExported / SharedImported count the winner's clause-exchange
	// traffic (zero unless the run used SolveShared with a ring).
	SharedExported uint64
	SharedImported uint64
}

// Result of a portfolio run.
type Result struct {
	// Status is the first verdict (Unknown if every worker exhausted its
	// budget, the deadline passed, or the context was cancelled).
	Status sat.Status
	// Winner names the worker that produced the verdict.
	Winner string
	// Model is the satisfying assignment on Sat.
	Model []bool
	// Elapsed is the time to the first verdict — not the time for the
	// interrupted losers to wind down. Without a verdict it is the full
	// wall-clock time of the run.
	Elapsed time.Duration
	// Stats are the winner's final solver counters (zero when the verdict
	// needed no search, e.g. a formula refuted at clause insertion).
	Stats Stats
}

// Sharing configures learnt-clause exchange between portfolio members
// through the internal/share ring: each worker exports its low-LBD learnt
// clauses and imports the others' at restart boundaries. The zero value
// disables exchange (the bit-reproducible-per-worker configuration); with
// exchange on, per-worker search counters become timing-dependent, as
// documented on sat.Solver.SetExchange.
type Sharing struct {
	// Slots sizes the exchange ring (0 disables sharing).
	Slots int
	// MaxLBD caps the LBD of exported clauses.
	MaxLBD int
}

// Solve runs the workers concurrently on (copies of) the formula until
// the first verdict or the timeout (0 = none).
func Solve(f *cnf.Formula, workers []Worker, timeout time.Duration) *Result {
	return SolveContext(context.Background(), f, workers, timeout)
}

// SolveContext is Solve bound to a context: cancellation interrupts every
// worker promptly (through the solver interrupt hook, polled every few
// hundred conflicts) and the call returns Unknown. The same hook is what
// stops the losers the moment a verdict lands, so a worker deep inside a
// large conflict budget does not keep its goroutine and memory alive
// after the race is decided.
func SolveContext(ctx context.Context, f *cnf.Formula, workers []Worker, timeout time.Duration) *Result {
	return SolveShared(ctx, f, workers, timeout, Sharing{})
}

// SolveShared is SolveContext with learnt-clause exchange between the
// members. With sharing.Slots == 0 it is exactly SolveContext.
func SolveShared(ctx context.Context, f *cnf.Formula, workers []Worker, timeout time.Duration, sharing Sharing) *Result {
	if len(workers) == 0 {
		workers = DefaultWorkers()
	}
	var ring *share.Ring
	if sharing.Slots > 0 && sharing.MaxLBD > 0 && len(workers) > 1 {
		ring = share.NewRing(sharing.Slots, sharing.MaxLBD)
	}
	start := time.Now()
	deadline := time.Time{}
	if timeout > 0 {
		deadline = start.Add(timeout)
	}

	// raceCtx cancels when a verdict lands (or the caller's ctx does);
	// every solver polls it through its interrupt hook.
	raceCtx, stopAll := context.WithCancel(ctx)
	defer stopAll()

	type verdict struct {
		status sat.Status
		name   string
		model  []bool
		stats  Stats
	}
	results := make(chan verdict, len(workers))
	solvers := make([]*sat.Solver, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		if w.WalkSAT != nil {
			wg.Add(1)
			go func(name string, o walksat.Options) {
				defer wg.Done()
				wctx := raceCtx
				if !deadline.IsZero() {
					var cancel context.CancelFunc
					wctx, cancel = context.WithDeadline(raceCtx, deadline)
					defer cancel()
				}
				// Local search only reads the formula, so no clone is
				// needed; its model is verified inside walksat.Solve.
				r := walksat.Solve(wctx, f, o)
				results <- verdict{r.Status, name, r.Model, Stats{}}
			}(w.Name, *w.WalkSAT)
			continue
		}
		s := sat.New(w.Options)
		ok := s.AddFormula(f.Clone())
		if ring != nil {
			s.SetExchange(ring.Endpoint())
		}
		solvers[i] = s
		budget := w.ConflictBudget
		if budget <= 0 {
			budget = -1
		}
		wg.Add(1)
		go func(name string, s *sat.Solver, budget int64, trivialUnsat bool) {
			defer wg.Done()
			if trivialUnsat {
				results <- verdict{sat.Unsat, name, nil, Stats{}}
				return
			}
			if !deadline.IsZero() {
				s.SetDeadline(deadline)
			}
			st := s.SolveLimitedCtx(raceCtx, budget)
			var m []bool
			if st == sat.Sat {
				m = s.Model()
			}
			// The stats are read here, on the worker goroutine after the
			// solve returns, so the winner's counters travel with its
			// verdict instead of racing the losers' wind-down.
			results <- verdict{st, name, m, Stats{
				Conflicts:      s.Conflicts,
				Decisions:      s.Decisions,
				Propagations:   s.Propagations,
				Restarts:       s.Restarts,
				SharedExported: s.SharedExported,
				SharedImported: s.SharedImported,
			}}
		}(w.Name, s, budget, !ok)
	}

	res := &Result{Status: sat.Unknown}
	for range workers {
		v := <-results
		if v.status != sat.Unknown && res.Status == sat.Unknown {
			res.Status = v.status
			res.Winner = v.name
			res.Model = v.model
			res.Stats = v.stats
			// Elapsed is the time to the verdict; the loser wind-down
			// below is bookkeeping, not solving.
			res.Elapsed = time.Since(start)
			// First verdict: stop everyone else, both through the context
			// (persistent, hook-polled) and the one-shot interrupt flag
			// (caught between the hook polls).
			stopAll()
			for _, s := range solvers {
				if s != nil { // walksat members have no solver slot
					s.Interrupt()
				}
			}
		}
	}
	wg.Wait()
	if res.Status == sat.Unknown {
		res.Elapsed = time.Since(start)
	}
	return res
}
