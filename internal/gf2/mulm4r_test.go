package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMulM4RMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		a := randomMatrix(rng, 1+rng.Intn(40), 1+rng.Intn(100))
		b := randomMatrix(rng, a.Cols(), 1+rng.Intn(100))
		want := a.Mul(b)
		got := a.MulM4R(b)
		if !got.Equal(want) {
			t.Fatalf("trial %d: MulM4R differs from Mul (%dx%d · %dx%d)",
				trial, a.Rows(), a.Cols(), b.Rows(), b.Cols())
		}
	}
}

func TestMulM4REdgeShapes(t *testing.T) {
	// Word-boundary-straddling strips and degenerate shapes.
	for _, dims := range [][3]int{{1, 64, 1}, {3, 65, 2}, {5, 127, 129}, {2, 128, 64}, {7, 63, 65}} {
		rng := rand.New(rand.NewSource(int64(dims[1])))
		a := randomMatrix(rng, dims[0], dims[1])
		b := randomMatrix(rng, dims[1], dims[2])
		if !a.MulM4R(b).Equal(a.Mul(b)) {
			t.Fatalf("mismatch at dims %v", dims)
		}
	}
}

func TestMulM4RIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 20, 77)
	if !m.MulM4R(Identity(77)).Equal(m) {
		t.Fatal("m·I != m via M4R")
	}
}

func TestMulM4RDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	NewMatrix(2, 3).MulM4R(NewMatrix(4, 5))
}

// Property: (A·B)·C == A·(B·C) with mixed kernels.
func TestQuickMulM4RAssociative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 1+rng.Intn(12), 1+rng.Intn(12))
		b := randomMatrix(rng, a.Cols(), 1+rng.Intn(12))
		c := randomMatrix(rng, b.Cols(), 1+rng.Intn(12))
		return a.MulM4R(b).Mul(c).Equal(a.Mul(b.MulM4R(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulPlain(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randomMatrix(rng, 512, 512)
	y := randomMatrix(rng, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Mul(y)
	}
}

func BenchmarkMulM4R(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randomMatrix(rng, 512, 512)
	y := randomMatrix(rng, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MulM4R(y)
	}
}
