// Package lint is a miniature static-analysis framework built only on the
// standard library's go/ast, go/parser and go/types — no golang.org/x/tools
// — matching the repo's from-scratch ethos. It exists to machine-check the
// invariants the rest of the codebase relies on but no compiler enforces:
// context polling in long-running technique loops, bit-identical fact
// learning (no wall-clock or map-order dependence in provenance-tracked
// paths), word-packed GF(2) indexing confined to internal/gf2, nil-guarded
// proof hooks, and disciplined mutex handling in the server and solver.
//
// The pieces: LoadModule parses and type-checks the module's packages,
// Analyzer is one rule with an AST-walking Run function, Run applies
// analyzers to packages and resolves //lint:ignore suppressions, and
// cmd/bosphoruslint is the multichecker CLI in front of it all.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one positioned finding.
type Diagnostic struct {
	// Analyzer names the rule that produced the finding.
	Analyzer string `json:"analyzer"`
	// Pos locates the finding (file:line:column).
	Pos token.Position `json:"pos"`
	// Message states the violated invariant and, where possible, the fix.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the identifier used on the command line and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the rule guards.
	Doc string
	// Run inspects one type-checked package and reports findings through
	// the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) pairing.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ArenaRefAnalyzer,
		CtxPollAnalyzer,
		DeterminismAnalyzer,
		GF2PackAnalyzer,
		ProofHookAnalyzer,
		LockHoldAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzer string
	line     int // the line the directive suppresses is line or line+1
	used     bool
}

const ignorePrefix = "//lint:ignore "

// parseIgnores scans a file's comments for //lint:ignore directives.
// A well-formed directive is
//
//	//lint:ignore <analyzer> <reason>
//
// and suppresses that analyzer's diagnostics on the directive's own line
// and on the line directly below it (the usual "comment above the
// offending statement" placement). A directive with a missing analyzer or
// an empty reason is itself reported — a suppression without a recorded
// reason defeats the point of the gate.
func parseIgnores(pkg *Package, file *ast.File, diags *[]Diagnostic) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, strings.TrimSpace(ignorePrefix)) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, strings.TrimSpace(ignorePrefix))
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				*diags = append(*diags, Diagnostic{
					Analyzer: "lint",
					Pos:      pkg.Fset.Position(c.Pos()),
					Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
				})
				continue
			}
			out = append(out, &ignoreDirective{
				analyzer: fields[0],
				line:     pkg.Fset.Position(c.Pos()).Line,
			})
		}
	}
	return out
}

// Run applies the analyzers to the packages and returns the surviving
// diagnostics, sorted by position. //lint:ignore directives matching a
// diagnostic's analyzer and line (or the line above) drop it; a directive
// for an analyzer that ran but suppressed nothing is itself reported, so
// stale suppressions cannot silently outlive the code they excused.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ignores := map[string][]*ignoreDirective{}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			ignores[name] = parseIgnores(pkg, f, &diags)
		}
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, diags: &diags})
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range ignores[d.Pos.Filename] {
			if ig.analyzer == d.Analyzer && (ig.line == d.Pos.Line || ig.line == d.Pos.Line-1) {
				ig.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept
	for file, igs := range ignores {
		for _, ig := range igs {
			if !ig.used && ran[ig.analyzer] {
				diags = append(diags, Diagnostic{
					Analyzer: "lint",
					Pos:      token.Position{Filename: file, Line: ig.line, Column: 1},
					Message:  fmt.Sprintf("unused //lint:ignore directive: no %s diagnostic here to suppress", ig.analyzer),
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
