// Package gfe implements arithmetic in the small binary fields GF(2^e)
// used by the small-scale AES variants SR(n, r, c, e) of Cid, Murphy and
// Robshaw (FSE 2005) — the benchmark family behind the paper's SR-[1,4,4,8]
// instances. Elements are polynomial-basis bit vectors packed into a uint16.
package gfe

import "fmt"

// Field is GF(2^e) with a fixed irreducible reduction polynomial.
type Field struct {
	e   uint
	red uint16 // reduction polynomial including the x^e term
	inv []uint16
}

// NewField returns GF(2^e) for e in {4, 8} with the standard reduction
// polynomials: x^4+x+1 (0x13) and the AES polynomial x^8+x^4+x^3+x+1
// (0x11B).
func NewField(e int) *Field {
	var red uint16
	switch e {
	case 4:
		red = 0x13
	case 8:
		red = 0x11B
	default:
		panic(fmt.Sprintf("gfe: unsupported field size e=%d", e))
	}
	f := &Field{e: uint(e), red: red}
	f.buildInverseTable()
	return f
}

// E returns the extension degree e.
func (f *Field) E() int { return int(f.e) }

// Order returns 2^e.
func (f *Field) Order() int { return 1 << f.e }

// Add returns a ⊕ b.
func (f *Field) Add(a, b uint16) uint16 { return a ^ b }

// Mul returns the product a·b mod the reduction polynomial.
func (f *Field) Mul(a, b uint16) uint16 {
	var acc uint32
	x := uint32(a)
	for i := uint(0); i < f.e; i++ {
		if b>>i&1 == 1 {
			acc ^= x << i
		}
	}
	// Reduce.
	for i := 2*f.e - 2; i >= f.e; i-- {
		if acc>>i&1 == 1 {
			acc ^= uint32(f.red) << (i - f.e)
		}
	}
	return uint16(acc)
}

// Pow returns a^n.
func (f *Field) Pow(a uint16, n int) uint16 {
	result := uint16(1)
	base := a
	for n > 0 {
		if n&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		n >>= 1
	}
	return result
}

func (f *Field) buildInverseTable() {
	f.inv = make([]uint16, f.Order())
	for a := 1; a < f.Order(); a++ {
		// a^(2^e - 2) = a^{-1} in GF(2^e)*.
		f.inv[a] = f.Pow(uint16(a), f.Order()-2)
	}
}

// Inv returns the multiplicative inverse of a, with Inv(0) = 0 (the AES
// pseudo-inverse convention).
func (f *Field) Inv(a uint16) uint16 { return f.inv[a&uint16(f.Order()-1)] }

// SBox applies the SR S-box: pseudo-inversion followed by a GF(2)-affine
// map (matrix L and constant c in the polynomial basis).
type SBox struct {
	f     *Field
	L     []uint16 // L[i] = row i of the GF(2) matrix as a bitmask
	C     uint16
	table []uint16
}

// NewAESSBox returns the S-box of SR(n,r,c,e): inversion followed by the
// standard affine layer. For e=8 this is exactly the AES S-box; for e=4 we
// use the affine layer of the small-scale AES family (a fixed invertible
// circulant and constant 0x6).
func NewAESSBox(f *Field) *SBox {
	var s *SBox
	switch f.E() {
	case 8:
		// AES affine: bit_i(out) = b_i ⊕ b_{(i+4)%8} ⊕ b_{(i+5)%8} ⊕
		// b_{(i+6)%8} ⊕ b_{(i+7)%8} ⊕ c_i with c = 0x63.
		L := make([]uint16, 8)
		for i := 0; i < 8; i++ {
			row := uint16(0)
			for _, off := range []int{0, 4, 5, 6, 7} {
				row |= 1 << uint((i+off)%8)
			}
			L[i] = row
		}
		s = &SBox{f: f, L: L, C: 0x63}
	case 4:
		// Small-scale AES affine over GF(2)^4: circulant rows (1,1,1,0)
		// and constant 0x6 — invertible (odd number of taps).
		L := make([]uint16, 4)
		for i := 0; i < 4; i++ {
			row := uint16(0)
			for _, off := range []int{0, 1, 2} {
				row |= 1 << uint((i+off)%4)
			}
			L[i] = row
		}
		s = &SBox{f: f, L: L, C: 0x6}
	default:
		panic("gfe: unsupported sbox field")
	}
	s.buildTable()
	return s
}

func parityBits(x uint16) uint16 {
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// applyAffine computes L·v ⊕ C over GF(2).
func (s *SBox) applyAffine(v uint16) uint16 {
	out := s.C
	for i, row := range s.L {
		if parityBits(v&row) == 1 {
			out ^= 1 << uint(i)
		}
	}
	return out
}

func (s *SBox) buildTable() {
	s.table = make([]uint16, s.f.Order())
	for a := 0; a < s.f.Order(); a++ {
		s.table[a] = s.applyAffine(s.f.Inv(uint16(a)))
	}
}

// Apply returns S(a).
func (s *SBox) Apply(a uint16) uint16 { return s.table[a&uint16(s.f.Order()-1)] }

// Table returns the full S-box lookup table (length 2^e). The returned
// slice must not be modified.
func (s *SBox) Table() []uint16 { return s.table }

// IsPermutation reports whether the S-box is bijective (sanity check used
// by tests and by the ANF generator).
func (s *SBox) IsPermutation() bool {
	seen := make([]bool, len(s.table))
	for _, v := range s.table {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
