package proof

import (
	"bytes"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// FuzzProofCheck feeds arbitrary bytes to the checker as a proof of a
// fixed formula: the checker must never panic, and — the DRAT soundness
// property — it must never report Verified on a satisfiable formula.
func FuzzProofCheck(f *testing.F) {
	f.Add([]byte("2 0\n"))
	f.Add([]byte("d 1 2 0\n2 0\n"))
	f.Add([]byte("x 1 2 0\n0\n"))
	f.Add([]byte{0x61, 0x04, 0x00})
	f.Add([]byte("1 -1 0\nd 3 0\n"))
	sample := phpFuzz()
	f.Fuzz(func(t *testing.T, proof []byte) {
		res, err := Check(sample, bytes.NewReader(proof))
		if err != nil {
			return
		}
		if res.Verified {
			t.Fatalf("satisfiable formula verified UNSAT by proof %q", proof)
		}
	})
}

// phpFuzz is a small satisfiable formula with an XOR row so all record
// kinds are reachable.
func phpFuzz() *cnf.Formula {
	f := &cnf.Formula{}
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(2, false))
	f.AddClause(cnf.MkLit(1, true), cnf.MkLit(2, true), cnf.MkLit(3, false))
	f.AddXor(true, 2, 3)
	return f
}

// FuzzProofMutation solves a fixed UNSAT instance once, then applies the
// fuzzed byte edit to the recorded proof: any mutation must either fail
// to parse, fail a RUP/justification step, or still be a valid proof —
// never crash the checker.
func FuzzProofMutation(f *testing.F) {
	formula := phpUnsatFuzz()
	s := sat.New(sat.DefaultOptions(sat.ProfileMiniSat))
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	s.SetProof(w)
	if s.AddFormula(formula) {
		s.Solve()
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	base := buf.Bytes()
	f.Add(0, byte(' '))
	f.Add(1, byte('-'))
	f.Add(2, byte('9'))
	f.Fuzz(func(t *testing.T, pos int, b byte) {
		if len(base) == 0 {
			t.Skip()
		}
		mut := append([]byte(nil), base...)
		mut[abs(pos)%len(mut)] = b
		_, _ = Check(formula, bytes.NewReader(mut)) // must not panic
	})
}

func phpUnsatFuzz() *cnf.Formula { return php(4, 3) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
