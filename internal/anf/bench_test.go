package anf

import (
	"math/rand"
	"testing"
)

func benchPolys(n, maxVar, terms, deg int, seed int64) []Poly {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Poly, n)
	for i := range out {
		out[i] = randPoly(rng, maxVar, terms, deg)
	}
	return out
}

func BenchmarkPolyAdd(b *testing.B) {
	ps := benchPolys(64, 64, 24, 3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ps[i%64].Add(ps[(i+1)%64])
	}
}

func BenchmarkPolyMul(b *testing.B) {
	ps := benchPolys(64, 32, 8, 2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ps[i%64].Mul(ps[(i+1)%64])
	}
}

func BenchmarkSubstituteVar(b *testing.B) {
	ps := benchPolys(64, 32, 16, 3, 3)
	r := MustParsePoly("x1 + x2 + 1")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ps[i%64].SubstituteVar(5, r)
	}
}

func BenchmarkParsePoly(b *testing.B) {
	s := "x1*x2*x3 + x4*x5 + x6 + x7 + x8*x9*x10 + 1"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParsePoly(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMobiusTransform(b *testing.B) {
	vars := make([]Var, 10)
	for i := range vars {
		vars[i] = Var(i)
	}
	rng := rand.New(rand.NewSource(4))
	table := make([]bool, 1<<10)
	for i := range table {
		table[i] = rng.Intn(2) == 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromTruthTable(vars, table)
	}
}

func BenchmarkSystemPropagationSetup(b *testing.B) {
	// Building occurrence lists for a large system.
	polys := benchPolys(2000, 500, 6, 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := NewSystem()
		for _, p := range polys {
			sys.Add(p)
		}
	}
}
