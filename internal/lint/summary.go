package lint

import (
	"go/ast"
	"go/types"
)

// This file computes per-function call-effect summaries over every
// module-local package the loader saw — the interprocedural half of the
// dataflow engine. Each declared function gets an Effects record built
// from its own body (allocation sites, arena touches) plus a bottom-up
// fixpoint over the call graph, so an analyzer asking "may this call
// trigger arena GC?" or "is this callee provably allocation-free?" gets a
// transitive answer, not a syntactic one. The summaries are computed once
// per Program and shared by every (analyzer, package) pass — PR-10+
// analyzers (parity clauses, incremental sessions) reuse them as-is.

// Program is the unit the suite runs over: the pattern-matched packages
// plus every module-local dependency loaded alongside them, with lazily
// built call-effect summaries.
type Program struct {
	// Pkgs are the packages the analyzers report on.
	Pkgs []*Package
	// All is Pkgs plus module-local dependencies — the summary universe.
	// Effects propagate across package boundaries through it.
	All []*Package

	sums  map[*types.Func]*Effects
	decls map[*types.Func]*declSite
}

// declSite locates a function's declaration.
type declSite struct {
	pkg *Package
	fd  *ast.FuncDecl
}

// Effects is one function's transitive call-effect summary.
type Effects struct {
	// Allocates: the function (or a transitive callee) may allocate on the
	// heap — make/new, a growing append, a slice/map literal, a capturing
	// closure, string concatenation, interface boxing, a map write, or a
	// spawned goroutine.
	Allocates bool
	// CallsUnknown: the function calls something without a summary (a
	// function value, an interface method, un-whitelisted stdlib), so
	// "allocation-free" is not provable.
	CallsUnknown bool
	// ArenaAlloc: may append into the SAT clause arena, which can move the
	// backing array — every lits() view taken earlier is invalidated.
	ArenaAlloc bool
	// ArenaGC: may trigger the arena's compacting GC — ClauseRefs held in
	// locals (not remapped roots) and all views are invalidated.
	ArenaGC bool
	// ReturnsView: returns a slice aliasing the arena backing store
	// (clauseArena.lits or a wrapper returning its result).
	ReturnsView bool
	// Hotpath: declared //bosphorus:hotpath.
	Hotpath bool

	callees    []*types.Func
	retCallees []*types.Func // callees whose result flows into a return
}

// allocFreePkgs whitelists stdlib packages whose functions never allocate
// (pure word arithmetic, atomics, and the PRNG core: rand.Rand methods
// draw from an in-place source); calls into them do not forfeit an
// alloc-free summary.
var allocFreePkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"math/rand":   true,
	"sync/atomic": true,
}

// summaries returns the program's call-effect table, building it on first
// use.
func (p *Program) summaries() map[*types.Func]*Effects {
	if p.sums == nil {
		p.build()
	}
	return p.sums
}

// declOf maps a function object back to its declaration, or nil for
// functions outside the loaded module.
func (p *Program) declOf(fn *types.Func) *declSite {
	if p.decls == nil {
		p.build()
	}
	return p.decls[fn]
}

// effectsOf returns fn's summary, or nil when fn has none (stdlib,
// function values).
func (p *Program) effectsOf(fn *types.Func) *Effects {
	if fn == nil {
		return nil
	}
	return p.summaries()[fn]
}

func (p *Program) build() {
	p.sums = map[*types.Func]*Effects{}
	p.decls = map[*types.Func]*declSite{}
	for _, pkg := range p.All {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				eff := localEffects(pkg, fd)
				eff.Hotpath = isHotpathDecl(fd)
				p.sums[fn] = eff
				p.decls[fn] = &declSite{pkg: pkg, fd: fd}
			}
		}
	}
	// Bottom-up fixpoint: effects flow from callee to caller until stable.
	// Monotone over a finite lattice, so this terminates.
	for changed := true; changed; {
		changed = false
		for _, eff := range p.sums {
			for _, callee := range eff.callees {
				ce := p.sums[callee]
				if ce == nil {
					continue
				}
				if ce.Allocates && !eff.Allocates {
					eff.Allocates = true
					changed = true
				}
				if ce.CallsUnknown && !eff.CallsUnknown {
					eff.CallsUnknown = true
					changed = true
				}
				if ce.ArenaAlloc && !eff.ArenaAlloc {
					eff.ArenaAlloc = true
					changed = true
				}
				if ce.ArenaGC && !eff.ArenaGC {
					eff.ArenaGC = true
					changed = true
				}
			}
			for _, callee := range eff.retCallees {
				if ce := p.sums[callee]; ce != nil && ce.ReturnsView && !eff.ReturnsView {
					eff.ReturnsView = true
					changed = true
				}
			}
		}
	}
}

// isHotpathDecl reports whether the declaration carries the
// //bosphorus:hotpath annotation in its doc comment.
func isHotpathDecl(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if d, ok, err := ParseDirective(c.Text); ok && err == nil && d.Kind == DirHotpath {
			return true
		}
	}
	return false
}

// localEffects computes one declaration's own effects: allocation sites,
// arena-touch bases, callee edges. Function-literal bodies fold into the
// enclosing declaration (a deferred or spawned closure's effects happen
// on the declaring function's watch).
func localEffects(pkg *Package, fd *ast.FuncDecl) *Effects {
	eff := &Effects{}
	if isArenaBase(pkg, fd, "alloc") {
		eff.ArenaAlloc = true
	}
	if isSatReceiverMethod(pkg, fd, "garbageCollect") {
		eff.ArenaGC = true
	}
	if isArenaBase(pkg, fd, "lits") {
		eff.ReturnsView = true
	}
	if len(allocSites(pkg, fd.Body)) > 0 {
		eff.Allocates = true
	}
	seen := map[*types.Func]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isTypeConversion(pkg, n) {
				return true
			}
			if callee := calleeFunc(pkg, n); callee != nil {
				if !seen[callee] {
					seen[callee] = true
					eff.callees = append(eff.callees, callee)
				}
			} else if !isBuiltinCall(pkg, n) && calleeName(n) != "panic" {
				if !whitelistedCall(pkg, n) {
					eff.CallsUnknown = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if call, ok := unparen(r).(*ast.CallExpr); ok {
					if callee := calleeFunc(pkg, call); callee != nil {
						eff.retCallees = append(eff.retCallees, callee)
					}
				}
			}
		}
		return true
	})
	return eff
}

// isArenaBase matches a method of the given name on the clauseArena type.
func isArenaBase(pkg *Package, fd *ast.FuncDecl, name string) bool {
	if fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	return isClauseArenaType(typeOf(pkg, fd.Recv.List[0].Type))
}

// isSatReceiverMethod matches a method of the given name declared on any
// type of an internal/sat package (real module or fixture).
func isSatReceiverMethod(pkg *Package, fd *ast.FuncDecl, name string) bool {
	if fd.Name.Name != name || fd.Recv == nil {
		return false
	}
	return pkgPathHas(pkg, "internal/sat")
}

// calleeFunc resolves a call's target to a declared function or method,
// or nil for function values, interface methods, builtins and
// conversions.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface dispatch has no body to summarize.
				if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
					return nil
				}
				return fn
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBuiltinCall reports whether the call targets a language builtin.
func isBuiltinCall(pkg *Package, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[id]
	_, isB := obj.(*types.Builtin)
	return isB
}

// isTypeConversion reports whether the "call" is a type conversion.
func isTypeConversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// whitelistedCall reports calls into stdlib packages known allocation-
// free (math, math/bits, sync/atomic — including methods on atomic
// types).
func whitelistedCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	for path := range allocFreePkgs {
		if isPkgIdent(pkg, sel.X, path) {
			return true
		}
	}
	// Methods on sync/atomic types (atomic.Bool.Load, ...).
	if s, ok := pkg.Info.Selections[sel]; ok {
		if named, ok := derefPtr(s.Recv()).(*types.Named); ok {
			if p := named.Obj().Pkg(); p != nil && allocFreePkgs[p.Path()] {
				return true
			}
		}
	}
	return false
}

// derefPtr strips one pointer level without going to the underlying type.
func derefPtr(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// allocationFinding is one heap-allocation site with its position.
type allocationFinding struct {
	node ast.Node
	what string
}

// allocSites collects the statically visible heap allocations in a
// function body: make/new, growing appends (self-appends into the same
// slot and pooled buf[:0] resets are amortized and excluded), slice/map/
// pointer composite literals, capturing closures, string concatenation,
// map writes, interface boxing at call sites, and spawned goroutines.
func allocSites(pkg *Package, body ast.Node) []allocationFinding {
	var out []allocationFinding
	amortized := map[*ast.CallExpr]bool{}
	// First pass: mark appends in amortized positions.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := unparen(rhs).(*ast.CallExpr)
			if !ok || !isAppendCall(pkg, call) || len(call.Args) == 0 {
				continue
			}
			if appendIsAmortized(pkg, as.Lhs[i], call) {
				amortized[call] = true
			}
		}
		return true
	})
	report := func(n ast.Node, what string) {
		out = append(out, allocationFinding{node: n, what: what})
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pkg, n) {
				switch calleeName(n) {
				case "make":
					report(n, "make allocates")
				case "new":
					report(n, "new allocates")
				case "append":
					if !amortized[n] {
						report(n, "growing append allocates (amortized self-appends into pooled backing are exempt)")
					}
				}
				return true
			}
			if isTypeConversion(pkg, n) {
				if allocatingConversion(pkg, n) {
					report(n, "string<->slice conversion allocates")
				}
				return true
			}
			if calleeName(n) != "panic" {
				reportBoxedArgs(pkg, n, report)
			}
		case *ast.CompositeLit:
			t := typeOf(pkg, n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n, "slice/map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "&composite literal allocates")
				}
			}
		case *ast.FuncLit:
			if closureCaptures(pkg, n) {
				report(n, "capturing closure allocates")
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isStringExpr(pkg, n) && !isConstExpr(pkg, n) {
				report(n, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
					if t := typeOf(pkg, ix.X); t != nil && isMapType(t) {
						report(lhs, "map write may rehash and allocate")
					}
				}
			}
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 && isStringExpr(pkg, n.Lhs[0]) {
				report(n, "string concatenation allocates")
			}
		case *ast.IncDecStmt:
			if ix, ok := unparen(n.X).(*ast.IndexExpr); ok {
				if t := typeOf(pkg, ix.X); t != nil && isMapType(t) {
					report(n, "map write may rehash and allocate")
				}
			}
		case *ast.GoStmt:
			report(n, "go statement allocates a goroutine")
		}
		return true
	}
	ast.Inspect(body, visit)
	return out
}

func isAppendCall(pkg *Package, call *ast.CallExpr) bool {
	return isBuiltinCall(pkg, call) && calleeName(call) == "append"
}

// appendIsAmortized reports the two sanctioned append shapes: a
// self-append (x = append(x, ...)) whose growth amortizes into backing
// that persists across calls, and an append onto a pooled-reset prefix
// (y := append(buf[:0], ...)).
func appendIsAmortized(pkg *Package, lhs ast.Expr, call *ast.CallExpr) bool {
	dst := exprText(pkg.Fset, lhs)
	src := exprText(pkg.Fset, call.Args[0])
	if dst != "" && dst == src {
		return true
	}
	if sl, ok := unparen(call.Args[0]).(*ast.SliceExpr); ok {
		if sl.Low == nil || isZeroLit(pkg, sl.Low) {
			if sl.High != nil && isZeroLit(pkg, sl.High) {
				return true
			}
		}
	}
	return false
}

func isZeroLit(pkg *Package, e ast.Expr) bool {
	v, ok := intConstValue(pkg, e)
	return ok && v == 0
}

func isStringExpr(pkg *Package, e ast.Expr) bool {
	t := typeOf(pkg, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// allocatingConversion matches string([]byte), []byte(string) and
// friends, which copy.
func allocatingConversion(pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	to, from := typeOf(pkg, call.Fun), typeOf(pkg, call.Args[0])
	if to == nil || from == nil {
		return false
	}
	toStr := isStringType(to)
	fromStr := isStringType(from)
	_, toSlice := to.Underlying().(*types.Slice)
	_, fromSlice := from.Underlying().(*types.Slice)
	return (toStr && fromSlice) || (toSlice && fromStr)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// closureCaptures reports whether a function literal references any
// variable declared outside itself but inside the enclosing function —
// the captured environment forces a heap-allocated closure.
func closureCaptures(pkg *Package, fl *ast.FuncLit) bool {
	captures := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == nil || obj.Pkg() == nil {
			return true
		}
		// Package-level variables are not captures; anything declared
		// outside the literal's own extent but within the same file scope
		// chain is.
		if obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		if obj.Pos() < fl.Pos() || obj.Pos() > fl.End() {
			captures = true
		}
		return true
	})
	return captures
}

// reportBoxedArgs flags concrete values passed to interface parameters —
// the implicit conversion boxes the value onto the heap.
func reportBoxedArgs(pkg *Package, call *ast.CallExpr, report func(ast.Node, string)) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := typeOf(pkg, arg)
		if at == nil {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, argIface := at.Underlying().(*types.Interface); argIface {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in the iface word; no box
		}
		report(arg, "interface boxing allocates")
	}
}
