// Package share is a lint fixture: its import path ends in
// internal/share, a lockhold target — the export ring sits on the conquer
// workers' hot path, so a wedged or re-entrant lock there stalls every
// solver in the portfolio.
package share

import "sync"

type ring struct {
	mu    sync.Mutex
	slots []uint32
}

// Exported locks and defers the unlock: clean, and the callee side of the
// re-entrancy rule below.
func (r *ring) Exported() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots)
}

// badPublish leaves through an early return with the lock held: every
// later export from every worker would block forever.
func (r *ring) badPublish(w uint32) bool {
	r.mu.Lock()
	if len(r.slots) == cap(r.slots) {
		return false // want lockhold "return reached while holding r.mu"
	}
	r.slots = append(r.slots, w)
	r.mu.Unlock()
	return true
}

// goodPublish registers the unlock up front.
func (r *ring) goodPublish(w uint32) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.slots) == cap(r.slots) {
		return false
	}
	r.slots = append(r.slots, w)
	return true
}

// badStats re-takes the ring lock through a method call while holding it.
func (r *ring) badStats() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Exported() // want lockhold "which Exported re-acquires"
}

// badDrain reaches the end of the function with the lock still held.
func (r *ring) badDrain() {
	r.mu.Lock()
	r.slots = r.slots[:0]
} // want lockhold "function end reached while holding r.mu"
