package core

import (
	"math/rand"

	"repro/internal/anf"
	"repro/internal/groebner"
)

// GroebnerConfig parameterizes the optional Buchberger phase — the paper's
// §V discussion points out that with Bosphorus, Gröbner-basis computation
// "may now be applied in an iterative manner together with other solving
// techniques" instead of as a monolithic (and memory-hungry) solver. Like
// XL and ElimLin, the phase runs on a subsample under a strict work budget
// and only the cheap facts are retained.
type GroebnerConfig struct {
	// M bounds the linearized size of the subsample, as in XL/ElimLin.
	M int
	// Budget bounds the Buchberger work (see groebner.Options).
	Budget groebner.Options
	// Rand drives the subsampling.
	Rand *rand.Rand
}

// DefaultGroebnerConfig keeps the phase cheap: tiny subsamples, tight
// budgets — facts or fail-fast. (Buchberger cost is superlinear in every
// budget knob; these defaults keep the phase to a fraction of a second so
// it can run every iteration, per the §V "iterative manner" idea.)
func DefaultGroebnerConfig(rng *rand.Rand) GroebnerConfig {
	return GroebnerConfig{
		M:      10,
		Budget: groebner.Options{MaxBasis: 96, MaxTerms: 1 << 12, MaxReductions: 1 << 11},
		Rand:   rng,
	}
}

// RunGroebnerStep runs budgeted Buchberger on a subsample and harvests the
// same fact shapes as XL: linear polynomials, monomial ⊕ 1, and the
// contradiction 1.
func RunGroebnerStep(sys *anf.System, cfg GroebnerConfig) []anf.Poly {
	polys := subsample(sys, cfg.M, cfg.Rand)
	if len(polys) == 0 {
		return nil
	}
	sub := anf.NewSystem()
	for _, p := range polys {
		sub.Add(p)
	}
	res := groebner.Basis(sub, cfg.Budget)
	if res.Contradiction {
		return []anf.Poly{anf.OnePoly()}
	}
	var facts []anf.Poly
	for _, g := range res.Basis {
		if g.IsLinear() || g.IsMonomialPlusOne() {
			facts = append(facts, g)
		}
	}
	return facts
}
