package simp

import "repro/internal/cnf"

// Blocked-clause elimination (Järvisalo, Biere, Heule — TACAS 2010): a
// clause C is blocked on one of its literals l when every resolvent of C
// with a clause containing ¬l is a tautology. Blocked clauses can be
// removed without affecting satisfiability; a model of the reduced
// formula extends to the original by flipping l when C is unsatisfied.
// BCE composes with BVE/subsumption and uses the same reconstruction
// stack.

// eliminateBlocked removes blocked clauses, pushing (pivot, clause) pairs
// onto the reconstruction stack. Frozen variables are not used as pivots
// (their semantics must survive for XOR clauses). Reports whether any
// clause was removed.
func (p *preprocessor) eliminateBlocked() bool {
	changed := false
	for _, c := range p.clauses {
		if c.deleted {
			continue
		}
		for _, l := range c.lits {
			if p.frozen[l.Var()] || p.assigns[l.Var()] != 0 {
				continue
			}
			if p.isBlockedOn(c, l) {
				c.deleted = true
				p.rec.stack = append(p.rec.stack, elimGroup{
					v:       l.Var(),
					bce:     true,
					pivot:   l,
					clauses: []cnf.Clause{c.lits.Clone()},
				})
				p.blocked++
				changed = true
				break
			}
		}
	}
	return changed
}

// isBlockedOn reports whether every resolvent of c on l is tautological.
func (p *preprocessor) isBlockedOn(c *simpClause, l cnf.Lit) bool {
	for _, d := range p.occ[l.Not()] {
		if d.deleted || d == c || !contains(d.lits, l.Not()) {
			continue
		}
		if _, ok := resolve(c.lits, d.lits, l.Var()); ok {
			return false // a non-tautological resolvent exists
		}
	}
	return true
}
