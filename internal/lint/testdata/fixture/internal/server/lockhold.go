// Package server is a lint fixture for the lockhold analyzer (its import
// path ends in internal/server, one of the analyzer's target packages).
package server

import "sync"

type cache struct {
	mu sync.Mutex
	n  int
}

// Len locks and defers the unlock: clean, and the callee side of the
// re-entrancy rule below.
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// badEarlyReturn leaves through a return while the lock is held with no
// deferred unlock.
func (c *cache) badEarlyReturn(cond bool) int {
	c.mu.Lock()
	if cond {
		return c.n // want lockhold "return reached while holding c.mu"
	}
	c.mu.Unlock()
	return 0
}

// deferredReturn registers the unlock up front: every return path is
// clean.
func (c *cache) deferredReturn(cond bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cond {
		return c.n
	}
	return 0
}

// badReentrant calls a method that re-takes the lock it is holding.
func (c *cache) badReentrant() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Len() // want lockhold "which Len re-acquires"
}

// badDoubleLock re-acquires a mutex it already holds.
func (c *cache) badDoubleLock() {
	c.mu.Lock()
	c.mu.Lock() // want lockhold "already held"
	c.mu.Unlock()
	c.mu.Unlock()
}

// badFallthrough reaches the end of the function with the lock held.
func (c *cache) badFallthrough() {
	c.mu.Lock()
	c.n++
} // want lockhold "function end reached while holding c.mu"

// unlockAfterCallee releases before calling the re-locking method: clean.
func (c *cache) unlockAfterCallee() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.Len()
}
