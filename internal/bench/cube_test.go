package bench

import (
	"context"
	"sort"
	"testing"

	"repro/internal/cube"
	"repro/internal/sat"
	"repro/internal/satgen"
)

// Every cube-scaling job must reach its known verdict through the cube
// solver at each measured worker count — a wrong verdict would make the
// scaling numbers meaningless — and the one-worker run must be
// deterministic (the reproducibility the wall-clock medians rest on).
func TestCubeScalingJobsVerdicts(t *testing.T) {
	for _, job := range CubeScalingJobs() {
		job := job
		t.Run(job.Name, func(t *testing.T) {
			f := job.Build()
			for _, w := range []int{1, 4} {
				res := cube.Solve(context.Background(), f, CubeScalingOptions(w))
				if job.Want == satgen.StatusSat && res.Status != sat.Sat {
					t.Fatalf("w=%d: verdict %v, want SAT", w, res.Status)
				}
				if job.Want == satgen.StatusUnsat && res.Status != sat.Unsat {
					t.Fatalf("w=%d: verdict %v, want UNSAT", w, res.Status)
				}
			}
			a := cube.Solve(context.Background(), f, CubeScalingOptions(1))
			b := cube.Solve(context.Background(), f, CubeScalingOptions(1))
			if a.Status != b.Status || a.SatCube != b.SatCube || a.Conflicts != b.Conflicts {
				t.Fatalf("one-worker cube run not deterministic: %v/%d/%d vs %v/%d/%d",
					a.Status, a.SatCube, a.Conflicts, b.Status, b.SatCube, b.Conflicts)
			}
		})
	}
}

// The family's reason to exist: on this single-CPU gate machine the
// 4-worker cube solve must beat the direct single-engine solve on the
// family median — an algorithmic win (smaller total search / SAT
// short-circuit), since there is no parallel hardware to hide behind.
// The per-instance target is ≥1.5x (recorded in BENCH_pr7.json); the
// test gate is 1.2x to keep scheduler noise from flaking CI.
func TestCubeScalingBeatsDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second wall-clock comparison")
	}
	res := MeasureCubeScaling(CubeScalingJobs(), []int{1, 2, 4}, 3)
	speedups := make([]int64, 0, len(res))
	for name, m := range res {
		t.Logf("%s: direct=%dns cube=%v speedup=%.2fx",
			name, m.DirectNs, m.CubeNs, float64(m.SpeedupMilli)/1000)
		speedups = append(speedups, m.SpeedupMilli)
	}
	sort.Slice(speedups, func(i, j int) bool { return speedups[i] < speedups[j] })
	if med := speedups[len(speedups)/2]; med < 1200 {
		t.Fatalf("median 4-worker speedup %.2fx < 1.2x over the family", float64(med)/1000)
	}
}
