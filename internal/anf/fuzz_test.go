package anf

import "testing"

// FuzzParsePoly checks that the parser never panics and that everything
// it accepts survives a print/parse round trip.
func FuzzParsePoly(f *testing.F) {
	for _, seed := range []string{
		"x1*x2 + x3 + 1",
		"0",
		"1",
		"x0",
		"x4294967295",
		"x1 + x1",
		"  x2 * x3  +  1 ",
		"x1*x2*x3*x4*x5",
		"x1 ⊕ x2",
		"+ x1",
		"x1 +",
		"y1",
		"x",
		"x1**x2",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePoly(s)
		if err != nil {
			return
		}
		back, err := ParsePoly(p.String())
		if err != nil {
			t.Fatalf("printed form %q of %q does not parse: %v", p.String(), s, err)
		}
		if !back.Equal(p) {
			t.Fatalf("round trip changed %q: %q vs %q", s, p.String(), back.String())
		}
	})
}
