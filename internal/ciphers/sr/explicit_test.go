package sr

import (
	"math/rand"
	"testing"

	"repro/internal/anf"
)

func TestExplicitSBoxPolysMatchTable(t *testing.T) {
	for _, e := range []int{4, 8} {
		c := New(Params{N: 1, R: 1, C: 1, E: e})
		in := make([]anf.Var, e)
		for i := range in {
			in[i] = anf.Var(i)
		}
		polys := ExplicitSBoxPolys(c.SBox.Table(), e, in)
		if len(polys) != e {
			t.Fatalf("e=%d: %d polynomials", e, len(polys))
		}
		for x := 0; x < c.Field.Order(); x++ {
			want := c.SBox.Apply(uint16(x))
			assign := func(v anf.Var) bool { return uint16(x)>>uint(v)&1 == 1 }
			for j, f := range polys {
				if f.Eval(assign) != (want>>uint(j)&1 == 1) {
					t.Fatalf("e=%d: bit %d wrong at x=%#x", e, j, x)
				}
			}
		}
	}
}

func TestExplicitEncodingDegree(t *testing.T) {
	// AES inversion-based S-boxes have explicit ANF of degree e-1.
	c := New(Params{N: 1, R: 2, C: 2, E: 4})
	enc := EncodeStyle(c, StyleExplicit)
	if d := enc.Sys.MaxDeg(); d != 3 {
		t.Fatalf("explicit e=4 encoding degree = %d, want 3", d)
	}
	encI := EncodeStyle(c, StyleImplicit)
	if d := encI.Sys.MaxDeg(); d != 2 {
		t.Fatalf("implicit encoding degree = %d, want 2", d)
	}
	// Explicit has far fewer equations (e per S-box instead of ~21).
	if enc.Sys.Len() >= encI.Sys.Len() {
		t.Fatalf("explicit (%d eqs) should be smaller than implicit (%d eqs)",
			enc.Sys.Len(), encI.Sys.Len())
	}
}

func TestExplicitInstanceWitness(t *testing.T) {
	for _, p := range []Params{{1, 1, 1, 4}, {1, 2, 2, 4}, {2, 2, 2, 4}} {
		rng := rand.New(rand.NewSource(33))
		inst := GenerateInstanceStyle(p, StyleExplicit, rng)
		assign := func(v anf.Var) bool {
			return int(v) < len(inst.Witness) && inst.Witness[int(v)]
		}
		if !inst.Sys.Eval(assign) {
			for _, q := range inst.Sys.Polys() {
				if q.Eval(assign) {
					t.Fatalf("%v: explicit witness violates %s", p, q)
				}
			}
		}
	}
}

// Both styles must define the same solution set over the shared variables:
// the witness of one satisfies the other.
func TestStylesAgree(t *testing.T) {
	p := Params{N: 1, R: 2, C: 2, E: 4}
	rng := rand.New(rand.NewSource(44))
	instI := GenerateInstance(p, rng)
	// Regenerate with the same rng seed for identical plaintext/key.
	rng = rand.New(rand.NewSource(44))
	instE := GenerateInstanceStyle(p, StyleExplicit, rng)
	assign := func(v anf.Var) bool {
		return int(v) < len(instI.Witness) && instI.Witness[int(v)]
	}
	if !instE.Sys.Eval(assign) {
		t.Fatal("implicit witness does not satisfy the explicit system")
	}
}
