package core

import (
	"math/rand"

	"repro/internal/anf"
)

// ElimLinConfig parameterizes ElimLin (§II-C).
type ElimLinConfig struct {
	// M bounds the linearized size of the subsampled system, as in XL.
	M int
	// MaxRounds caps the GJE–substitute iterations (a safety valve; the
	// algorithm terminates when no linear equations remain).
	MaxRounds int
	// Rand drives the subsampling.
	Rand *rand.Rand
}

// DefaultElimLinConfig mirrors the paper's settings with the scaled M.
func DefaultElimLinConfig(rng *rand.Rand) ElimLinConfig {
	return ElimLinConfig{M: 20, MaxRounds: 64, Rand: rng}
}

// RunElimLin performs the ElimLin algorithm on a random subset of the
// system and returns the linear equations learnt across all rounds. The
// input system is not modified; substitutions happen on a working copy.
func RunElimLin(sys *anf.System, cfg ElimLinConfig) []anf.Poly {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	work := subsample(sys, cfg.M, cfg.Rand)
	if len(work) == 0 {
		return nil
	}
	var learnt []anf.Poly
	for round := 0; round < cfg.MaxRounds; round++ {
		// Step (1): GJE on the linearization.
		reduced := gjeRows(work)
		// Step (2): gather the linear equations.
		var linear []anf.Poly
		var rest []anf.Poly
		for _, p := range reduced {
			switch {
			case p.IsZero():
			case p.IsLinear():
				linear = append(linear, p)
			default:
				rest = append(rest, p)
			}
		}
		if len(linear) == 0 {
			break
		}
		learnt = append(learnt, linear...)
		// Step (3): use each linear equation to eliminate one variable —
		// the variable occurring in the fewest remaining equations.
		for _, l := range linear {
			if l.IsOne() {
				// Contradiction: surface it as a learnt fact and stop.
				return append(learnt, anf.OnePoly())
			}
			vs := l.LinearVars()
			if len(vs) == 0 {
				continue
			}
			v := pickElimVar(vs, rest)
			// Solve l for v: v = l ⊕ v (the rest of the equation).
			rhs := l.Add(anf.VarPoly(v))
			for i, p := range rest {
				rest[i] = p.SubstituteVar(v, rhs)
			}
		}
		work = rest
	}
	return learnt
}

// pickElimVar returns the variable of vs occurring in the fewest
// polynomials of rest.
func pickElimVar(vs []anf.Var, rest []anf.Poly) anf.Var {
	best := vs[0]
	bestCount := -1
	for _, v := range vs {
		count := 0
		for _, p := range rest {
			if p.ContainsVar(v) {
				count++
			}
		}
		if bestCount < 0 || count < bestCount {
			best, bestCount = v, count
		}
	}
	return best
}
