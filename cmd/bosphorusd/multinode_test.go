package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/proof"
	"repro/internal/satgen"
)

// daemon is one spawned bosphorusd process with its resolved base URL.
type daemon struct {
	cmd    *exec.Cmd
	base   string
	stderr *bytes.Buffer
}

// startDaemon execs the built binary with the given extra flags and waits
// for its address line.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &bytes.Buffer{}}
	cmd.Stderr = d.stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line; stderr:\n%s", d.stderr.String())
	}
	line := sc.Text()
	d.base = "http://" + line[strings.LastIndex(line, " ")+1:]
	go func() {
		for sc.Scan() {
		}
	}()
	return d
}

// TestMultiNodeSmoke drives the distributed cube-and-conquer deployment
// end to end with real processes: a coordinator plus two worker nodes,
// a cube job fanned out over HTTP, the stitched DRAT proof verified, a
// resubmission served from the coordinator's cache, and a clean SIGTERM
// shutdown of all three. When BOSPHORUSD_SMOKE_DIR is set the CNF and
// proof are dumped there so the gate script can re-verify the proof with
// the standalone proofcheck binary.
func TestMultiNodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "bosphorusd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	coord := startDaemon(t, bin, "-role", "coordinator", "-solve-workers", "2", "-max-timeout", "120s")
	waitHealthy(t, coord.base)
	workers := []*daemon{
		startDaemon(t, bin, "-role", "worker", "-coordinator", coord.base, "-poll", "10ms"),
		startDaemon(t, bin, "-role", "worker", "-coordinator", coord.base, "-poll", "10ms"),
	}
	for _, w := range workers {
		waitHealthy(t, w.base)
	}

	// Roles are visible on healthz.
	if body := httpGet(t, coord.base+"/healthz"); !strings.Contains(body, "role=coordinator") {
		t.Fatalf("coordinator healthz = %q", body)
	}
	if body := httpGet(t, workers[0].base+"/healthz"); !strings.Contains(body, "role=worker") {
		t.Fatalf("worker healthz = %q", body)
	}

	// One hard UNSAT cube job with proof, fanned out to the nodes.
	f := satgen.Pigeonhole(6, 5).Formula
	var dimacs strings.Builder
	if err := cnf.WriteDimacs(&dimacs, f); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{
		"format": "dimacs", "input": dimacs.String(),
		"mode": "cube", "max_cubes": 8, "proof": true, "timeout_ms": 90000,
	})
	post := func() map[string]any {
		t.Helper()
		resp, err := http.Post(coord.base+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /solve: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /solve status = %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return out
	}
	out := post()
	if out["status"] != "UNSAT" {
		t.Fatalf("cube job status = %v, want UNSAT (coordinator stderr:\n%s)", out["status"], coord.stderr.String())
	}
	proofText, _ := out["proof"].(string)
	if proofText == "" {
		t.Fatal("UNSAT cube job returned no proof")
	}
	cr, err := proof.Check(f, strings.NewReader(proofText))
	if err != nil || !cr.Verified {
		t.Fatalf("stitched proof rejected: %v (verified=%v)", err, cr != nil && cr.Verified)
	}

	// The coordinator fanned cubes out rather than solving locally.
	metrics := httpGet(t, coord.base+"/metrics")
	if v := counter(t, metrics, "bosphorusd_cubes_dispatched_total"); v < 2 {
		t.Fatalf("cubes_dispatched = %d, want >= 2", v)
	}
	if v := counter(t, metrics, "bosphorusd_cube_results_total"); v < 1 {
		t.Fatalf("cube_results = %d, want >= 1", v)
	}
	solved := int64(0)
	for _, w := range workers {
		solved += counter(t, httpGet(t, w.base+"/metrics"), "bosphorusd_node_cubes_solved_total")
	}
	if solved < 1 {
		t.Fatal("no worker node solved a cube")
	}

	// Identical resubmission: served from the coordinator's LRU keyed on
	// the normalized formula hash — a cross-node cache hit, no re-dispatch.
	again := post()
	if cached, _ := again["cached"].(bool); !cached {
		t.Fatalf("resubmission not cached: %v", again)
	}
	if again["proof"] != proofText {
		t.Fatal("cached proof differs")
	}

	// Artifact dump for the gate's standalone proofcheck verification.
	if dir := os.Getenv("BOSPHORUSD_SMOKE_DIR"); dir != "" {
		if err := os.WriteFile(filepath.Join(dir, "smoke.cnf"), []byte(dimacs.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "smoke.drat"), []byte(proofText), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// All three processes drain cleanly on SIGTERM.
	for _, d := range append([]*daemon{coord}, workers...) {
		if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for i, d := range append([]*daemon{coord}, workers...) {
		waitErr := make(chan error, 1)
		go func() { waitErr <- d.cmd.Wait() }()
		select {
		case err := <-waitErr:
			if err != nil {
				t.Fatalf("daemon %d exited with %v; stderr:\n%s", i, err, d.stderr.String())
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("daemon %d did not exit within 20s of SIGTERM", i)
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return b.String()
}
