// Weakened Bitcoin nonce finding (the paper's appendix-C benchmark,
// Fig. 5): a single 512-bit SHA-256 block with 415 randomly fixed bits, a
// free 32-bit nonce and standard padding; the task is to find a nonce
// whose (round-reduced) hash starts with K zero bits. The generator's own
// nonce stays hidden — the solver must find one itself (possibly a
// different one; any nonce meeting the target is a valid "block").
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	bosphorus "repro"
	"repro/internal/ciphers/sha256"
)

func main() {
	k := flag.Int("k", 8, "required leading zero bits of the hash")
	rounds := flag.Int("rounds", 16, "SHA-256 rounds (≥16; 64 = full)")
	seed := flag.Int64("seed", 15, "instance seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	inst := sha256.GenerateBitcoin(sha256.BitcoinParams{K: *k, Rounds: *rounds}, rng)
	fmt.Printf("Bitcoin-[%d] (%d rounds): %d variables, %d equations\n",
		*k, *rounds, inst.Sys.NumVars(), inst.Sys.Len())

	opts := bosphorus.DefaultOptions()
	opts.Seed = *seed
	start := time.Now()
	res := bosphorus.Solve(inst.Sys, opts)
	fmt.Printf("bosphorus: %v in %v\n", res.Status, time.Since(start).Round(time.Millisecond))
	if res.Status != bosphorus.SAT {
		log.Fatal("no nonce found")
	}
	nonce := inst.NonceFromSolution(res.Solution)
	fmt.Printf("found nonce: %08x (generator's own: %08x)\n", nonce, inst.Nonce)

	// Verify by hashing: rebuild the block with the found nonce.
	block := inst.Block
	block[12] = block[12]&^1 | nonce>>31
	block[13] = nonce<<1 | 1
	digest := sha256.Compress(block, *rounds)
	fmt.Printf("hash: %08x %08x ... (need %d leading zero bits)\n", digest[0], digest[1], *k)
	if *k > 0 && digest[0]>>(32-uint(*k)) != 0 {
		log.Fatal("nonce does not meet the target!")
	}
	fmt.Println("proof of work verified ✓")
}
