// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat tradition: two-watched-literal propagation, VSIDS
// branching, first-UIP conflict analysis with clause minimization, phase
// saving, Luby restarts and activity-based learnt-clause deletion.
//
// It reproduces the three solver roles of the Bosphorus paper:
//
//   - ProfileMiniSat: the minimalistic baseline configuration,
//   - ProfileLingeling: CDCL plus heavier preprocessing (bounded variable
//     elimination and subsumption, package simp) standing in for a
//     high-performance inprocessing solver,
//   - ProfileCMS: CDCL with native XOR constraints propagated by
//     Gauss–Jordan elimination, CryptoMiniSat's signature feature.
//
// Beyond solving, the package exposes what Bosphorus needs for fact
// learning: conflict budgets (§II-D) and harvesting of learnt unit and
// binary clauses.
package sat

// Profile selects a solver personality corresponding to the three solvers
// evaluated in the paper.
type Profile int

const (
	// ProfileMiniSat is the plain CDCL configuration.
	ProfileMiniSat Profile = iota
	// ProfileLingeling is CDCL tuned with more aggressive clause-database
	// management; callers pair it with simp preprocessing.
	ProfileLingeling
	// ProfileCMS is CDCL with the XOR/Gauss–Jordan propagator enabled.
	ProfileCMS
)

func (p Profile) String() string {
	switch p {
	case ProfileMiniSat:
		return "minisat"
	case ProfileLingeling:
		return "lingeling"
	case ProfileCMS:
		return "cryptominisat"
	default:
		return "unknown"
	}
}

// Options configures a Solver.
type Options struct {
	Profile Profile

	// VarDecay and ClauseDecay are the VSIDS/activity decay factors.
	VarDecay    float64
	ClauseDecay float64

	// RestartBase is the Luby restart unit, in conflicts.
	RestartBase int

	// LearntsFraction triggers clause-database reduction when the learnt
	// clause count exceeds this fraction of problem clauses plus trail.
	LearntsFraction float64

	// PhaseSaving enables progress saving of variable polarities.
	PhaseSaving bool

	// RandomSeed drives randomized polarity/decision tie-breaking; runs are
	// deterministic for a fixed seed.
	RandomSeed int64

	// RandomFreq is the probability of a random decision variable.
	RandomFreq float64

	// EnableGauss turns on the XOR Gauss–Jordan propagator (CMS profile).
	EnableGauss bool

	// MinGaussRows skips Gaussian elimination when there are fewer XOR rows
	// than this.
	MinGaussRows int

	// NativeXor routes AddXor constraints into the solver's packed parity
	// clause kind — one arena record per constraint, watched with the same
	// {ref, blocker} two-watch scheme as ordinary clauses — instead of the
	// 2^(k-1) clausal cut (no Gauss) or the Gauss side-car (CMS profile).
	// Rows longer than NativeXorMaxLen still go to Gauss when it is
	// enabled: long rows benefit from inter-reduction, short rows are
	// cheaper in-watch. DefaultOptions turns this on for every profile;
	// clear it (bosphorus -native-xor=false) for the differential CNF-cut
	// baseline.
	NativeXor bool

	// NativeXorMaxLen is the native-parity router's length threshold: with
	// Gauss enabled, rows with more variables than this go to the
	// elimination side-car. 0 means DefaultNativeXorMaxLen.
	NativeXorMaxLen int
}

// DefaultNativeXorMaxLen is the default native-parity length threshold.
// It matches RecoverXors' default recovery width: every XOR the solver
// recovers from clausal form stays in-watch, and only genuinely long
// rows (hand-added or conversion-emitted) reach the Gauss side-car.
const DefaultNativeXorMaxLen = 6

// DefaultOptions returns the options for a profile, mirroring the paper's
// solver matrix (§IV).
func DefaultOptions(p Profile) Options {
	o := Options{
		Profile:         p,
		VarDecay:        0.95,
		ClauseDecay:     0.999,
		RestartBase:     100,
		LearntsFraction: 1.0 / 3.0,
		PhaseSaving:     true,
		RandomSeed:      91648253,
		RandomFreq:      0,
		NativeXor:       true,
		NativeXorMaxLen: DefaultNativeXorMaxLen,
	}
	switch p {
	case ProfileLingeling:
		o.VarDecay = 0.85 // more reactive VSIDS, à la agile restarts
		o.RestartBase = 50
	case ProfileCMS:
		o.EnableGauss = true
		o.MinGaussRows = 2
	}
	return o
}

// Status is the outcome of a (possibly budget-limited) solve call.
type Status int

const (
	// Unknown means the conflict budget ran out before a verdict (§II-D
	// case 3).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}
