package portfolio

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/satgen"
	"repro/internal/walksat"
)

func TestPortfolioSat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := satgen.ParityChain(24, 26, 3, true, rng)
	res := Solve(inst.Formula, nil, 10*time.Second)
	if res.Status != sat.Sat {
		t.Fatalf("status %v (winner %s)", res.Status, res.Winner)
	}
	if res.Winner == "" {
		t.Fatal("no winner recorded")
	}
	if !inst.Formula.Eval(func(v cnf.Var) bool { return res.Model[v] }) {
		t.Fatal("winning model does not satisfy the formula")
	}
}

func TestPortfolioUnsat(t *testing.T) {
	inst := satgen.Pigeonhole(7, 6)
	res := Solve(inst.Formula, nil, 10*time.Second)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v", res.Status)
	}
}

func TestPortfolioTrivialUnsat(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(cnf.MkLit(0, false))
	f.AddClause(cnf.MkLit(0, true))
	res := Solve(f, nil, time.Second)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v", res.Status)
	}
}

func TestPortfolioTimeout(t *testing.T) {
	inst := satgen.Pigeonhole(12, 11) // too hard for 150 ms
	start := time.Now()
	res := Solve(inst.Formula, nil, 150*time.Millisecond)
	if res.Status != sat.Unknown {
		t.Fatalf("status %v", res.Status)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout not honoured")
	}
}

func TestPortfolioCustomWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := satgen.RandomKSAT(30, 3, 4.0, rng)
	workers := []Worker{
		{Name: "a", Options: sat.DefaultOptions(sat.ProfileMiniSat)},
		{Name: "b", Options: sat.DefaultOptions(sat.ProfileCMS)},
	}
	res := Solve(inst.Formula, workers, 10*time.Second)
	if res.Status == sat.Unknown {
		t.Fatal("small instance unsolved")
	}
	if res.Winner != "a" && res.Winner != "b" {
		t.Fatalf("winner %q not a configured worker", res.Winner)
	}
}

// All workers must agree; run several instances and cross-check against a
// single reference solver.
func TestPortfolioAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		inst := satgen.RandomKSAT(24, 3, 4.26, rng)
		ref := sat.New(sat.DefaultOptions(sat.ProfileMiniSat))
		ref.AddFormula(inst.Formula)
		want := ref.Solve()
		res := Solve(inst.Formula, nil, 30*time.Second)
		if res.Status != want {
			t.Fatalf("trial %d: portfolio %v, reference %v", trial, res.Status, want)
		}
	}
}

// Regression for the loser-shutdown fix: once the first verdict lands,
// the remaining workers must be interrupted promptly (through the solver
// interrupt hook) instead of running out their conflict budgets, and
// Result.Elapsed must reflect the first-verdict time, not the wind-down.
func TestLoserShutdownPromptAndElapsed(t *testing.T) {
	inst := satgen.Pigeonhole(8, 7) // hard enough that every worker is mid-search
	workers := []Worker{
		{Name: "a", Options: sat.DefaultOptions(sat.ProfileMiniSat)},
		{Name: "b", Options: sat.DefaultOptions(sat.ProfileLingeling), ConflictBudget: 1 << 40},
		{Name: "c", Options: sat.DefaultOptions(sat.ProfileMiniSat), ConflictBudget: 1 << 40},
	}
	start := time.Now()
	res := Solve(inst.Formula, workers, 30*time.Second)
	wall := time.Since(start)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v", res.Status)
	}
	if res.Elapsed <= 0 || res.Elapsed > wall+time.Millisecond {
		t.Fatalf("Elapsed %v outside (0, wall=%v]", res.Elapsed, wall)
	}
	// The budgeted losers must not run out their 2^40 conflicts: the whole
	// call returns within a small interrupt-poll latency of the verdict.
	if wall-res.Elapsed > 2*time.Second {
		t.Fatalf("losers took %v to stop after the verdict", wall-res.Elapsed)
	}
}

func TestSolveContextCancelPrompt(t *testing.T) {
	inst := satgen.Pigeonhole(12, 11) // effectively unsolvable here
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Result, 1)
	go func() { done <- SolveContext(ctx, inst.Formula, nil, 0) }()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.Status != sat.Unknown {
			t.Fatalf("cancelled portfolio returned %v", res.Status)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("portfolio did not stop within 2s of cancellation")
	}
}

func TestWorkerConflictBudget(t *testing.T) {
	inst := satgen.Pigeonhole(10, 9) // needs far more than 50 conflicts
	workers := []Worker{
		{Name: "tiny-a", Options: sat.DefaultOptions(sat.ProfileMiniSat), ConflictBudget: 50},
		{Name: "tiny-b", Options: sat.DefaultOptions(sat.ProfileLingeling), ConflictBudget: 50},
	}
	res := Solve(inst.Formula, workers, 0)
	if res.Status != sat.Unknown {
		t.Fatalf("budget-bounded portfolio returned %v (winner %s)", res.Status, res.Winner)
	}
	if res.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded on budget exhaustion")
	}
}

func TestInterruptLatency(t *testing.T) {
	// Interrupting a hard solve must return promptly.
	inst := satgen.Pigeonhole(12, 11)
	s := sat.New(sat.DefaultOptions(sat.ProfileMiniSat))
	s.AddFormula(inst.Formula)
	done := make(chan sat.Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(50 * time.Millisecond)
	s.Interrupt()
	select {
	case st := <-done:
		if st != sat.Unknown {
			t.Fatalf("interrupted solve returned %v", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("interrupt did not stop the solver")
	}
}

// The winner's final search counters must travel into the Result: a
// pigeonhole refutation needs real search, so the winning solver's
// conflict/decision/propagation counts are all nonzero.
func TestWinnerStatsPropagated(t *testing.T) {
	inst := satgen.Pigeonhole(7, 6)
	res := Solve(inst.Formula, nil, 10*time.Second)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v", res.Status)
	}
	if res.Stats.Conflicts == 0 || res.Stats.Decisions == 0 || res.Stats.Propagations == 0 {
		t.Fatalf("winner stats not propagated: %+v", res.Stats)
	}
}

// A formula refuted at clause insertion produces a verdict with zero
// stats — no search happened, and the counters must say so.
func TestTrivialUnsatZeroStats(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(cnf.MkLit(0, false))
	f.AddClause(cnf.MkLit(0, true))
	res := Solve(f, nil, time.Second)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v", res.Status)
	}
	if res.Stats != (Stats{}) {
		t.Fatalf("trivial refutation carries stats: %+v", res.Stats)
	}
}

// A portfolio consisting only of a WalkSAT member must still find
// models on satisfiable instances, and its verdict's model must verify.
func TestPortfolioWalkSATMember(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inst := satgen.RandomKSAT(40, 3, 3.0, rng)
	workers := []Worker{{Name: "walksat", WalkSAT: &walksat.Options{Seed: 7, MaxFlips: 5_000_000}}}
	res := Solve(inst.Formula, workers, 30*time.Second)
	if res.Status == sat.Sat {
		if res.Winner != "walksat" {
			t.Fatalf("winner %q", res.Winner)
		}
		if !inst.Formula.Eval(func(v cnf.Var) bool { return res.Model[v] }) {
			t.Fatal("walksat model does not satisfy the formula")
		}
	} else if res.Status == sat.Unsat {
		t.Fatal("walksat member can never report Unsat")
	}
}

// With a WalkSAT member in the default pool, UNSAT instances must still
// be refuted by the CDCL members — the incomplete member just stays
// silent.
func TestPortfolioUnsatWithWalkSAT(t *testing.T) {
	inst := satgen.Pigeonhole(6, 5)
	res := Solve(inst.Formula, DefaultWorkers(), 30*time.Second)
	if res.Status != sat.Unsat {
		t.Fatalf("status %v (winner %s)", res.Status, res.Winner)
	}
}
