package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"repro/internal/anf"
	"repro/internal/cnf"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/portfolio"
	"repro/internal/proof"
	"repro/internal/sat"
)

// Request is the JSON body of POST /solve.
type Request struct {
	// Format of Input: "anf" (one polynomial per line) or "dimacs".
	Format string `json:"format"`
	// Input is the problem text.
	Input string `json:"input"`
	// Mode selects the work: "process" runs the fact-learning loop to its
	// fixed point, "solve" keeps going until a verdict, "portfolio" races
	// the parallel solver portfolio on the (CNF form of the) input, and
	// "cube" runs cube-and-conquer — split in-process, conquered either by
	// the local worker pool (solo role) or by pull-based worker nodes
	// (coordinator role). Default: "process".
	Mode string `json:"mode,omitempty"`
	// TimeoutMS bounds the job's wall-clock time; 0 takes the server
	// default, and the server's MaxJobTime caps it either way.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxIterations / ConflictBudget / Seed / Workers override the engine
	// defaults when positive.
	MaxIterations  int   `json:"max_iterations,omitempty"`
	ConflictBudget int64 `json:"conflict_budget,omitempty"`
	Seed           int64 `json:"seed,omitempty"`
	Workers        int   `json:"workers,omitempty"`
	// Verify tracks the provenance of every learnt fact and independently
	// re-derives each one against the input after the run; the response
	// carries the per-verdict tally. Engine modes only.
	Verify bool `json:"verify,omitempty"`
	// MaxCubes caps the cube tree's open-leaf count (cube mode only;
	// 0 takes the cube solver's default).
	MaxCubes int `json:"max_cubes,omitempty"`
	// Proof asks a cube-mode UNSAT job for its stitched DRAT refutation in
	// Response.Proof.
	Proof bool `json:"proof,omitempty"`
	// Route classifies the converted CNF at each SAT step and sends
	// tractable fragments (2SAT/Horn/XOR) to the polynomial solvers before
	// CDCL. Engine modes only; the server's -route default ORs in.
	Route bool `json:"route,omitempty"`
	// NoNativeXor falls back to the CNF-cut/Gauss-only XOR handling instead
	// of the solver's native parity clauses (the differential baseline).
	// Folded into the result-cache key: the two routings may harvest
	// different facts.
	NoNativeXor bool `json:"no_native_xor,omitempty"`
}

// Verification is the fact re-derivation tally for verify=true jobs.
type Verification struct {
	// Facts checked (inputs are trusted axioms and not counted).
	Facts int `json:"facts"`
	// Verified = witness replays + SAT entailments + input matches.
	Verified int `json:"verified"`
	// Failed facts are provably wrong; Unverified ones exhausted the
	// refutation budget. Both leave OK false.
	Failed     int  `json:"failed"`
	Unverified int  `json:"unverified"`
	OK         bool `json:"ok"`
}

// Response is the JSON answer for a solved/processed job.
type Response struct {
	// Status is SAT, UNSAT, PROCESSED, or CANCELED.
	Status string `json:"status"`
	// Solution holds the satisfying assignment (x1, x2, ... order) on SAT.
	Solution []bool `json:"solution,omitempty"`
	// Winner names the portfolio worker that produced the verdict.
	Winner string `json:"winner,omitempty"`
	// Facts counts the learnt facts per technique.
	Facts map[string]int `json:"facts,omitempty"`
	// Iterations of the fact-learning loop.
	Iterations int `json:"iterations,omitempty"`
	// ANF is the processed system (learnt facts applied) for engine modes.
	ANF string `json:"anf,omitempty"`
	// ElapsedMS is the solve's wall-clock time (0 for cache hits).
	ElapsedMS int64 `json:"elapsed_ms"`
	// Cached is true when the answer came from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Verification is present on verify=true jobs.
	Verification *Verification `json:"verification,omitempty"`
	// Cubes is the number of open cubes the splitter produced (cube mode).
	Cubes int `json:"cubes,omitempty"`
	// Proof is the stitched DRAT refutation of a proof=true UNSAT cube job,
	// checkable against the canonicalized DIMACS input.
	Proof string `json:"proof,omitempty"`
	// RoutedVia names the tractable fragment that decided a routed job
	// ("2sat", "horn", "antihorn", "xor"); empty when CDCL did the work.
	RoutedVia string `json:"routed_via,omitempty"`
}

// jobKind is the validated mode.
type jobKind int

const (
	kindProcess jobKind = iota
	kindSolve
	kindPortfolio
	kindCube
)

// job is one unit of queued work: the parsed problem plus its
// cancellation scope. done is closed by the worker after resp/err are
// set.
type job struct {
	kind     jobKind
	req      Request
	sys      *anf.System  // engine modes
	form     *cnf.Formula // portfolio/cube modes
	formText string       // canonical DIMACS, kept for cube-task dispatch
	key      string       // cache key over normalized input + config

	ctx  context.Context
	resp *Response
	err  error
	done chan struct{}
}

// parseJob validates a request and normalizes its input. The returned
// job carries the parsed system/formula and the cache key; ctx/done are
// filled in by the caller.
func parseJob(req Request) (*job, error) {
	jb := &job{req: req}
	switch strings.ToLower(req.Mode) {
	case "", "process":
		jb.kind = kindProcess
	case "solve":
		jb.kind = kindSolve
	case "portfolio":
		jb.kind = kindPortfolio
	case "cube":
		jb.kind = kindCube
	default:
		return nil, fmt.Errorf("unknown mode %q (want process, solve, portfolio, or cube)", req.Mode)
	}
	if strings.TrimSpace(req.Input) == "" {
		return nil, fmt.Errorf("empty input")
	}
	if req.Verify && (jb.kind == kindPortfolio || jb.kind == kindCube) {
		return nil, fmt.Errorf("verify is only supported in process/solve modes (portfolio/cube runs produce no fact ledger)")
	}
	if req.Proof && jb.kind != kindCube {
		return nil, fmt.Errorf("proof is only supported in cube mode")
	}

	// Parse, then re-serialize for the cache key: two payloads that differ
	// only in whitespace or comments normalize to the same key.
	var canon strings.Builder
	switch strings.ToLower(req.Format) {
	case "anf":
		sys, err := anf.ReadSystem(strings.NewReader(req.Input))
		if err != nil {
			return nil, fmt.Errorf("bad ANF input: %w", err)
		}
		if sys.Len() == 0 {
			return nil, fmt.Errorf("ANF input has no equations")
		}
		if err := anf.WriteSystem(&canon, sys); err != nil {
			return nil, err
		}
		jb.sys = sys
		if jb.kind == kindPortfolio || jb.kind == kindCube {
			f, _ := conv.ANFToCNF(sys, conv.DefaultOptions())
			jb.form = f
		}
	case "dimacs", "cnf":
		f, err := cnf.ReadDimacs(strings.NewReader(req.Input))
		if err != nil {
			return nil, fmt.Errorf("bad DIMACS input: %w", err)
		}
		if err := cnf.WriteDimacs(&canon, f); err != nil {
			return nil, err
		}
		jb.form = f
		if jb.kind != kindPortfolio && jb.kind != kindCube {
			jb.sys = conv.CNFToANF(f, conv.DefaultOptions())
		}
	default:
		return nil, fmt.Errorf("unknown format %q (want anf or dimacs)", req.Format)
	}
	if jb.kind == kindCube {
		// Cube tasks ship the formula to worker nodes as canonical DIMACS;
		// serializing once here means every dispatched task (and the proof
		// the client later checks) refers to the same normalized text.
		var ft strings.Builder
		if err := cnf.WriteDimacs(&ft, jb.form); err != nil {
			return nil, err
		}
		jb.formText = ft.String()
	}

	h := sha256.New()
	fmt.Fprintf(h, "mode=%d|iters=%d|confl=%d|seed=%d|workers=%d|timeout=%d|verify=%t|cubes=%d|proof=%t|route=%t|nonativexor=%t|",
		jb.kind, req.MaxIterations, req.ConflictBudget, req.Seed, req.Workers, req.TimeoutMS, req.Verify,
		req.MaxCubes, req.Proof, req.Route, req.NoNativeXor)
	h.Write([]byte(canon.String()))
	jb.key = hex.EncodeToString(h.Sum(nil))
	return jb, nil
}

// run executes the job under its context and fills resp. Engine config
// starts from the server's base config; per-request knobs override it.
func (jb *job) run(base core.Config, metrics *Metrics) *Response {
	start := time.Now()
	if jb.kind == kindCube {
		return jb.runCube(base)
	}
	if jb.kind == kindPortfolio {
		res := portfolio.SolveContext(jb.ctx, jb.form, nil, 0)
		resp := &Response{
			Status:    res.Status.String(),
			Winner:    res.Winner,
			ElapsedMS: time.Since(start).Milliseconds(),
		}
		if res.Status == sat.Sat {
			resp.Solution = res.Model
		}
		if res.Status == sat.Unknown {
			resp.Status = statusFor(jb.ctx, "PROCESSED")
		}
		return resp
	}

	cfg := base
	cfg.Context = jb.ctx
	cfg.StopOnSolution = jb.kind == kindSolve
	if jb.req.MaxIterations > 0 {
		cfg.MaxIterations = jb.req.MaxIterations
	}
	if jb.req.ConflictBudget > 0 {
		cfg.ConflictBudget = jb.req.ConflictBudget
	}
	if jb.req.Seed != 0 {
		cfg.Seed = jb.req.Seed
	}
	if jb.req.Workers > 0 {
		cfg.Workers = jb.req.Workers
	}
	cfg.Provenance = jb.req.Verify
	cfg.Route = jb.req.Route
	cfg.NoNativeXor = jb.req.NoNativeXor
	res := core.Process(jb.sys, cfg)
	if cfg.Route && res.RouteNs > 0 {
		metrics.ObserveRoute(res.RoutedVia, res.RouteNs)
	}

	facts := map[string]int{
		"xl":          res.XL.NewFacts,
		"elimlin":     res.ElimLin.NewFacts,
		"sat":         res.SAT.NewFacts,
		"groebner":    res.Groebner.NewFacts,
		"extra":       res.Extra.NewFacts,
		"propagation": res.PropagationFacts,
	}
	for t, n := range facts {
		metrics.AddFacts(t, n)
	}
	var anfOut strings.Builder
	_ = anf.WriteSystem(&anfOut, res.OutputANF())
	resp := &Response{
		Status:     res.Status.String(),
		Facts:      facts,
		Iterations: res.Iterations,
		ANF:        anfOut.String(),
		ElapsedMS:  time.Since(start).Milliseconds(),
	}
	resp.RoutedVia = res.RoutedVia
	if res.Status == core.SolvedSAT {
		resp.Solution = res.Solution
	}
	if jb.req.Verify && res.Provenance != nil {
		report := proof.VerifyFacts(jb.sys, res.Provenance, proof.VerifyOptions{
			Seed:    cfg.Seed,
			Context: jb.ctx,
		})
		resp.Verification = &Verification{
			Facts:      len(report.Verdicts),
			Verified:   report.Verified,
			Failed:     report.Failed,
			Unverified: report.Unverified,
			OK:         report.AllVerified(),
		}
		metrics.ProofVerified.Add(int64(report.Verified))
		metrics.ProofFailed.Add(int64(report.Failed + report.Unverified))
	}
	if res.Interrupted {
		resp.Status = statusFor(jb.ctx, resp.Status)
	}
	return resp
}

// cubeOptions builds the cube solver configuration from the server's base
// engine config with the request's overrides applied. ForceSplit is
// always on: a client asking for cube mode asked for the split, even with
// one worker (where it stays deterministic by the cube package's
// contract).
func (jb *job) cubeOptions(base core.Config) cube.Options {
	opts := cube.DefaultOptions()
	opts.SolverOptions = sat.DefaultOptions(base.Profile)
	if base.Seed != 0 {
		opts.SolverOptions.RandomSeed = base.Seed
	}
	if jb.req.Seed != 0 {
		opts.SolverOptions.RandomSeed = jb.req.Seed
	}
	if jb.req.Workers > 0 {
		opts.Workers = jb.req.Workers
	}
	if jb.req.MaxCubes > 0 {
		opts.MaxCubes = jb.req.MaxCubes
	}
	opts.ForceSplit = true
	opts.WithProof = jb.req.Proof
	return opts
}

// runCube is the solo-role cube path: split and conquer in-process on the
// cube package's worker pool.
func (jb *job) runCube(base core.Config) *Response {
	start := time.Now()
	res := cube.Solve(jb.ctx, jb.form, jb.cubeOptions(base))
	resp := &Response{
		Status:    res.Status.String(),
		Cubes:     res.Cubes,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	switch res.Status {
	case sat.Sat:
		resp.Solution = res.Model
	case sat.Unsat:
		resp.Proof = string(res.Proof)
	default:
		resp.Status = statusFor(jb.ctx, "UNKNOWN")
	}
	return resp
}

// statusFor maps a context-cancelled run to the CANCELED wire status,
// keeping the engine's own verdict otherwise.
func statusFor(ctx context.Context, fallback string) string {
	if ctx != nil && ctx.Err() != nil {
		return "CANCELED"
	}
	return fallback
}
