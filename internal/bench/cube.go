// Cube-and-conquer scaling family. These jobs measure the end-to-end
// wall-clock of the cube solver (split + conquer + merge) against the
// plain single-engine solve on the same instance, at 1, 2, and 4
// conquer workers.
//
// The machine running the gate has a single CPU, so any speedup here is
// algorithmic, not parallel: the split isolates subproblems whose total
// search is smaller than the monolithic one (UNSAT instances with
// symmetric cores like pigeonhole), or it puts a satisfiable cube near
// the front of the queue so the SAT short-circuit fires long before the
// direct solver's heuristics find the witness (random 3-SAT below the
// threshold). Instances where splitting does NOT pay (e.g. mutilated
// chessboard, whose refutation the splitter fragments) are deliberately
// excluded: the family tracks the regime cube mode is FOR, and the
// direct-path numbers keep the comparison honest.
//
// Everything is fixed-seed: the generators, the splitter (deterministic
// by construction), and the solver seeds. With one worker the cube runs
// are bit-reproducible; with more, scheduling varies the clause traffic
// but the wall-clock medians remain stable enough to gate on.
package bench

import (
	"context"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/cnf"
	"repro/internal/cube"
	"repro/internal/sat"
	"repro/internal/satgen"
)

// CubeScalingJobs returns the cube-vs-direct family: hard instances
// where lookahead splitting beats the monolithic search.
func CubeScalingJobs() []CDCLJob {
	return []CDCLJob{
		{
			Name: "php-9-8",
			Want: satgen.StatusUnsat,
			Build: func() *cnf.Formula {
				return satgen.Pigeonhole(9, 8).Formula
			},
		},
		{
			Name: "rand3sat-v200-r4.1",
			Want: satgen.StatusSat,
			Build: func() *cnf.Formula {
				return satgen.RandomKSAT(200, 3, 4.1, rand.New(rand.NewSource(5))).Formula
			},
		},
		{
			Name: "rand3sat-v210-r4.1",
			Want: satgen.StatusSat,
			Build: func() *cnf.Formula {
				return satgen.RandomKSAT(210, 3, 4.1, rand.New(rand.NewSource(9))).Formula
			},
		},
	}
}

// CubeScalingOptions is the fixed cube configuration the family runs
// under (exported so the equivalence tests exercise the same shape).
func CubeScalingOptions(workers int) cube.Options {
	opts := cube.DefaultOptions()
	opts.Workers = workers
	opts.ForceSplit = true
	opts.MaxCubes = 16
	opts.MaxDepth = 12
	opts.ProbeVars = 64
	opts.ShareSlots = 256
	opts.ShareMaxLBD = 4
	return opts
}

// CubeScalingMeasurement is one instance's wall-clock medians: the
// direct single-engine solve and the cube solve per worker count, plus
// the headline ratio direct/cube(maxWorkers) in thousandths.
type CubeScalingMeasurement struct {
	DirectNs int64 `json:"direct_ns"`
	// CubeNs maps the worker count (as a decimal string, JSON-friendly)
	// to the cube solve's median wall-clock.
	CubeNs map[string]int64 `json:"cube_ns"`
	// SpeedupMilli is 1000 * DirectNs / CubeNs[max workers measured].
	SpeedupMilli int64 `json:"speedup_milli"`
}

// MeasureCubeScaling runs each job `rounds` times per configuration
// (direct, then cube at each worker count) and reports per-config
// medians. The formula is built once outside the timed region; each
// timed run clones it through the solver's own AddFormula path.
func MeasureCubeScaling(jobs []CDCLJob, workerCounts []int, rounds int) map[string]CubeScalingMeasurement {
	if rounds <= 0 {
		rounds = 3
	}
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4}
	}
	out := make(map[string]CubeScalingMeasurement, len(jobs))
	for _, job := range jobs {
		f := job.Build()
		m := CubeScalingMeasurement{CubeNs: make(map[string]int64, len(workerCounts))}
		m.DirectNs = medianWall(rounds, func() {
			s := sat.New(sat.DefaultOptions(sat.ProfileMiniSat))
			if s.AddFormula(f.Clone()) {
				s.Solve()
			}
		})
		maxW := 0
		for _, w := range workerCounts {
			opts := CubeScalingOptions(w)
			m.CubeNs[strconv.Itoa(w)] = medianWall(rounds, func() {
				cube.Solve(context.Background(), f, opts)
			})
			if w > maxW {
				maxW = w
			}
		}
		if ns := m.CubeNs[strconv.Itoa(maxW)]; ns > 0 {
			m.SpeedupMilli = 1000 * m.DirectNs / ns
		}
		out[job.Name] = m
	}
	return out
}

func medianWall(rounds int, f func()) int64 {
	times := make([]int64, rounds)
	for i := range times {
		t0 := time.Now()
		f()
		times[i] = time.Since(t0).Nanoseconds()
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[rounds/2]
}
