GO ?= go

.PHONY: build test race bench check perf smoke lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/gf2 ./internal/server

# lint runs the project's own static analyzers (cmd/bosphoruslint):
# the pattern rules (arenaref, ctxpoll, determinism, gf2pack, proofhook,
# lockhold) plus the dataflow rules (arenagc, hotpath, goleak,
# verdictcheck).
lint:
	$(GO) run ./cmd/bosphoruslint ./...

# smoke builds the daemon and runs the end-to-end service test: start,
# submit jobs, cancellation, backpressure, metrics, SIGTERM drain.
smoke:
	$(GO) test -count=1 -run TestEndToEndSmoke ./cmd/bosphorusd

# bench runs the perf-critical benchmarks (linearization, elimination
# kernel, ElimLin, CDCL propagation/conflict families) with allocation
# stats.
bench:
	$(GO) test -run '^$$' -bench 'XL|RREF|ElimLin|PickElimVar' -benchmem \
		./internal/anf ./internal/core ./internal/gf2
	$(GO) test -run '^$$' -bench 'BenchmarkCDCL' -benchmem ./internal/sat

# check is the full local gate: gofmt + vet + build + race tests + proof
# round-trip smoke + checker fuzz + bench smoke.
check:
	sh scripts/check.sh

# proofsmoke runs only the proof round-trip: solve an UNSAT instance with
# --proof and --verify-facts, check the DRAT with proofcheck, and confirm
# a corrupted proof is rejected.
proofsmoke: build
	$(GO) run ./cmd/bosphorus -anf examples/instances/unsat_pair.anf -solve \
		-no-xl -no-elimlin -verify-facts -proof /tmp/bosphorus.smoke.drat
	$(GO) run ./cmd/proofcheck -cnf /tmp/bosphorus.smoke.drat.cnf -v /tmp/bosphorus.smoke.drat
	rm -f /tmp/bosphorus.smoke.drat /tmp/bosphorus.smoke.drat.cnf

# perf regenerates the machine-readable kernel + CDCL + cube + fragment
# timing snapshot. (BENCH_pr1.json, BENCH_pr5.json, BENCH_pr6.json and
# BENCH_pr7.json are frozen artifacts from earlier PRs; don't overwrite
# them. Compare generations with
# `go run ./cmd/benchtab -compare BENCH_pr7.json BENCH_pr8.json`.)
perf: build
	$(GO) run ./cmd/benchtab -perf BENCH_pr8.json
