// bosphoruslint is the repo's multichecker: it loads the module's
// packages with internal/lint (stdlib go/parser + go/types only), runs
// the project-specific analyzers, and prints positioned diagnostics.
//
// Usage:
//
//	bosphoruslint [-json] [-analyzers ctxpoll,gf2pack] [patterns...]
//
// Patterns follow the usual ./... convention and default to ./... from
// the module root above the working directory. Exit codes: 0 clean,
// 1 diagnostics found, 2 usage or load error.
//
// Suppress a single finding with a reasoned directive on (or directly
// above) the offending line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bosphoruslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, "bosphoruslint:", err)
		return 2
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "bosphoruslint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "bosphoruslint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "bosphoruslint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "bosphoruslint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
