// Command bosphorusd serves the fact-learning engine over HTTP/JSON: a
// bounded job queue in front of a solve worker pool, with per-job
// deadlines, backpressure (429 + Retry-After when the queue is full),
// an LRU result cache, and a graceful drain on SIGTERM/SIGINT.
//
// Endpoints:
//
//	POST /solve        {"format":"anf"|"dimacs","input":"...","mode":"process"|"solve"|"portfolio"|"cube",...}
//	GET  /healthz      200 "ok role=<role>" while serving, 503 while draining
//	GET  /metrics      plain-text counters (Prometheus exposition format)
//	GET  /cube/next    (coordinator role) next open cube task, 204 when idle
//	POST /cube/result  (coordinator role) a worker node's cube result
//
// Roles (-role):
//
//	solo         answer every job in-process (the default)
//	coordinator  split cube-mode jobs and fan the cubes out to worker nodes
//	worker       pull cube tasks from -coordinator, solve, post results
//
// Usage:
//
//	bosphorusd -listen :8176 -solve-workers 4 -queue 64
//	bosphorusd -listen :8176 -role coordinator
//	bosphorusd -listen :0 -role worker -coordinator http://127.0.0.1:8176
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/sat"
	"repro/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bosphorusd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bosphorusd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen      = fs.String("listen", "127.0.0.1:8176", "address to serve on (host:port; port 0 picks a free one)")
		workers     = fs.Int("solve-workers", 0, "solve worker pool size (0 = GOMAXPROCS)")
		queueSize   = fs.Int("queue", 64, "job queue capacity; a full queue answers 429")
		cacheSize   = fs.Int("cache", 128, "LRU result-cache capacity (negative disables)")
		defaultTime = fs.Duration("default-timeout", 10*time.Second, "job deadline when the request has no timeout_ms")
		maxTime     = fs.Duration("max-timeout", 60*time.Second, "hard cap on any job deadline")
		drainTime   = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs")
		solver      = fs.String("solver", "cms", "internal SAT solver: minisat | lingeling | cms")
		budget      = fs.Int64("confl", 10000, "default starting SAT conflict budget per job")
		maxIters    = fs.Int("iters", 16, "default maximum fact-learning iterations per job")
		engineJ     = fs.Int("j", 0, "fact-learning pipeline workers per job (0 = sequential)")
		role        = fs.String("role", "solo", "clustering role: solo | coordinator | worker")
		coordinator = fs.String("coordinator", "", "coordinator base URL (worker role)")
		poll        = fs.Duration("poll", 100*time.Millisecond, "idle poll interval between cube pulls (worker role)")
		routeFlag   = fs.Bool("route", false, "route tractable CNF fragments (2SAT/Horn/XOR) to polynomial solvers by default on every engine-mode job")
		nativeXor   = fs.Bool("native-xor", true, "keep XOR constraints as native parity clauses in the SAT solver (false = CNF-cut/Gauss baseline, folded into the job cache key)")
		verbose     = fs.Bool("v", false, "log one line per job")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	engine := core.DefaultConfig()
	engine.ConflictBudget = *budget
	engine.MaxIterations = *maxIters
	engine.Workers = *engineJ
	engine.Route = *routeFlag
	engine.NoNativeXor = !*nativeXor
	switch *solver {
	case "minisat":
		engine.Profile = sat.ProfileMiniSat
	case "lingeling":
		engine.Profile = sat.ProfileLingeling
		engine.Preprocess = true
	case "cms":
		engine.Profile = sat.ProfileCMS
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}

	if *role == "worker" {
		if *coordinator == "" {
			return fmt.Errorf("worker role needs -coordinator")
		}
		ncfg := server.NodeConfig{
			Coordinator: *coordinator,
			Poll:        *poll,
			Solver:      sat.DefaultOptions(engine.Profile),
		}
		if *verbose {
			ncfg.Log = log.New(stderr, "bosphorusd: ", log.LstdFlags)
		}
		return runWorkerNode(ncfg, *listen, stdout)
	}

	cfg := server.Config{
		Workers:        *workers,
		QueueSize:      *queueSize,
		CacheSize:      *cacheSize,
		DefaultJobTime: *defaultTime,
		MaxJobTime:     *maxTime,
		Engine:         engine,
	}
	if *role == "coordinator" {
		cfg.Role = server.RoleCoordinator
	} else if *role != "solo" {
		return fmt.Errorf("unknown role %q (want solo, coordinator, or worker)", *role)
	}
	if *verbose {
		cfg.Log = log.New(stderr, "bosphorusd: ", log.LstdFlags)
	}
	svc := server.New(cfg)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// The resolved address line is load-bearing: with -listen :0 it is how
	// callers (and the e2e smoke test) learn the actual port.
	fmt.Fprintf(stdout, "bosphorusd listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: withPprof(svc)}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (healthz flips to 503, new jobs get
	// 503), let queued and running jobs finish under their own deadlines,
	// then close the listener once in-flight responses are written.
	fmt.Fprintln(stdout, "bosphorusd draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Fprintln(stdout, "bosphorusd stopped")
	return nil
}

// runWorkerNode serves a cube worker: a small health/metrics listener
// plus the pull loop against the coordinator, both stopped by
// SIGTERM/SIGINT.
func runWorkerNode(ncfg server.NodeConfig, listen string, stdout io.Writer) error {
	node := server.NewNode(ncfg)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	// Same load-bearing address line as the service roles.
	fmt.Fprintf(stdout, "bosphorusd listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: node}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	pullDone := make(chan struct{})
	go func() {
		defer close(pullDone)
		_ = node.Run(ctx)
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "bosphorusd draining")
	<-pullDone
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	fmt.Fprintln(stdout, "bosphorusd stopped")
	return nil
}
