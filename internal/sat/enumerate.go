package sat

import "repro/internal/cnf"

// EnumerateModels returns up to max satisfying assignments (all of them
// when max ≤ 0), restricted to the first nVars variables: two models that
// agree on those variables count as one. Enumeration works by adding
// blocking clauses, so the solver is consumed — clone the formula into a
// fresh solver if it is still needed.
//
// This supports the paper's §V observation that Bosphorus "can
// continuously constrain the solution space without committing to one
// particular solution": enumerating the processed system's models over
// the original variables shows exactly how much the learnt facts have
// narrowed the space.
func (s *Solver) EnumerateModels(nVars int, max int) [][]bool {
	if nVars <= 0 || nVars > s.NumVars() {
		nVars = s.NumVars()
	}
	var out [][]bool
	for max <= 0 || len(out) < max {
		if s.Solve() != Sat {
			break
		}
		m := s.Model()
		model := make([]bool, nVars)
		copy(model, m[:nVars])
		out = append(out, model)
		// Block this projection: at least one of the first nVars must
		// differ.
		block := make([]cnf.Lit, nVars)
		for v := 0; v < nVars; v++ {
			block[v] = cnf.MkLit(cnf.Var(v), model[v])
		}
		if !s.AddClause(block...) {
			break
		}
		// Each solve leaves reduceDB/Simplify debris in the arena; long
		// enumerations are exactly the sessions whose watcher lists and
		// clause store would otherwise only grow.
		s.maybeGC()
	}
	return out
}

// CountModels returns the number of satisfying assignments projected onto
// the first nVars variables, up to the given cap (0 = unbounded). A
// return < cap is exact.
func (s *Solver) CountModels(nVars, cap int) int {
	return len(s.EnumerateModels(nVars, cap))
}
