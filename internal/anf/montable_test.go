package anf

import (
	"math/rand"
	"testing"
)

func TestMonoTableDenseIDs(t *testing.T) {
	tab := NewMonoTable()
	ms := []Monomial{
		NewMonomial(1, 2),
		NewMonomial(3),
		One,
		NewMonomial(1, 2, 7),
	}
	for i, m := range ms {
		if id := tab.ID(m); id != uint32(i) {
			t.Fatalf("ID(%v) = %d, want %d", m, id, i)
		}
	}
	if tab.Len() != len(ms) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(ms))
	}
	// Re-interning structurally equal monomials returns the same IDs.
	for i, m := range ms {
		dup := NewMonomial(m.Vars()...)
		if id := tab.ID(dup); id != uint32(i) {
			t.Fatalf("re-ID(%v) = %d, want %d", m, id, i)
		}
	}
	// Mono round-trips and carries the fast-path ID.
	for i := range ms {
		c := tab.Mono(uint32(i))
		if !c.Equal(ms[i]) {
			t.Fatalf("Mono(%d) = %v, want %v", i, c, ms[i])
		}
		if c.id != uint32(i)+1 {
			t.Fatalf("canonical id cache = %d, want %d", c.id, i+1)
		}
	}
}

// A monomial interned by one table must resolve correctly in another table,
// regardless of its cached id (the fast path must reject foreign ids).
func TestMonoTableForeignID(t *testing.T) {
	a, b := NewMonoTable(), NewMonoTable()
	// Table a: x1 gets id 0. Table b: x5 gets id 0.
	ca := a.Canonical(NewMonomial(1))
	b.ID(NewMonomial(5))
	if id := b.ID(ca); id != 1 {
		t.Fatalf("foreign monomial got id %d, want fresh id 1", id)
	}
	if got := b.Mono(1); !got.Equal(ca) {
		t.Fatalf("table b id 1 = %v, want x1", got)
	}
	// And the constant-1 monomial (empty vars — identity check degenerates
	// to content equality, which is still correct).
	cOne := a.Canonical(One)
	idB := b.ID(One)
	if got := b.ID(cOne); got != idB {
		t.Fatalf("One resolved to %d in table b, want %d", got, idB)
	}
}

func TestMonoTableLookup(t *testing.T) {
	tab := NewMonoTable()
	m := NewMonomial(2, 4)
	if _, ok := tab.Lookup(m); ok {
		t.Fatal("Lookup hit before interning")
	}
	id := tab.ID(m)
	if got, ok := tab.Lookup(m); !ok || got != id {
		t.Fatalf("Lookup = %d,%v; want %d,true", got, ok, id)
	}
	if got, ok := tab.Lookup(tab.Mono(id)); !ok || got != id {
		t.Fatalf("Lookup(canonical) = %d,%v; want %d,true", got, ok, id)
	}
}

func TestInternPolyIdempotent(t *testing.T) {
	tab := NewMonoTable()
	p := MustParsePoly("x1*x2 + x3 + 1")
	q := tab.InternPoly(p)
	if !q.Equal(p) {
		t.Fatalf("InternPoly changed the polynomial: %v vs %v", q, p)
	}
	// All terms of q are canonical; interning again must return q unchanged
	// (same backing slice, no allocation).
	r := tab.InternPoly(q)
	if len(r.terms) > 0 && len(q.terms) > 0 && &r.terms[0] != &q.terms[0] {
		t.Fatal("InternPoly reallocated an already-canonical polynomial")
	}
	for _, m := range q.terms {
		if id, ok := tab.Lookup(m); !ok {
			t.Fatalf("term %v not interned", m)
		} else if !tab.Mono(id).Equal(m) {
			t.Fatalf("term %v maps to %v", m, tab.Mono(id))
		}
	}
}

// Property test: the table must agree with a plain string-keyed map over a
// random stream of monomials (the structure it replaces).
func TestMonoTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tab := NewMonoTable()
	ref := map[string]uint32{}
	for i := 0; i < 5000; i++ {
		var vs []Var
		for d := 0; d < rng.Intn(4); d++ {
			vs = append(vs, Var(rng.Intn(12)))
		}
		m := NewMonomial(vs...)
		id := tab.ID(m)
		if want, ok := ref[m.Key()]; ok {
			if id != want {
				t.Fatalf("step %d: ID(%v) = %d, want %d", i, m, id, want)
			}
		} else {
			if int(id) != len(ref) {
				t.Fatalf("step %d: fresh ID %d not dense (have %d)", i, id, len(ref))
			}
			ref[m.Key()] = id
		}
		// Mix in fast-path hits on canonical copies.
		if rng.Intn(2) == 0 {
			c := tab.Mono(id)
			if got := tab.ID(c); got != id {
				t.Fatalf("fast path ID = %d, want %d", got, id)
			}
		}
	}
	if tab.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(ref))
	}
}

func TestSystemMonoTable(t *testing.T) {
	sys := NewSystem()
	sys.Add(MustParsePoly("x1*x2 + x3"))
	sys.Add(MustParsePoly("x2 + 1"))
	tab := sys.MonoTable()
	if tab.Len() != 4 { // x1*x2, x3, x2, 1
		t.Fatalf("table has %d monomials, want 4", tab.Len())
	}
	// System polys were rewritten to canonical terms: ID() on them must hit
	// without growing the table.
	for _, p := range sys.Polys() {
		for _, m := range p.Terms() {
			tab.ID(m)
		}
	}
	if tab.Len() != 4 {
		t.Fatalf("table grew to %d re-interning system terms", tab.Len())
	}
	// Later Adds keep the table current.
	sys.Add(MustParsePoly("x4*x5 + x2"))
	if _, ok := tab.Lookup(NewMonomial(4, 5)); !ok {
		t.Fatal("Add did not intern new monomials")
	}
	// Replace too.
	sys.Replace(0, MustParsePoly("x6 + 1"))
	if _, ok := tab.Lookup(NewMonomial(6)); !ok {
		t.Fatal("Replace did not intern new monomials")
	}
	// Clones intern independently.
	c := sys.Clone()
	ct := c.MonoTable()
	if ct == tab {
		t.Fatal("clone shares the monomial table")
	}
}

func TestFromSortedMonomials(t *testing.T) {
	want := MustParsePoly("x1*x2 + x3 + 1")
	got := FromSortedMonomials(want.Terms())
	if !got.Equal(want) {
		t.Fatalf("FromSortedMonomials = %v, want %v", got, want)
	}
	if !FromSortedMonomials(nil).IsZero() {
		t.Fatal("empty FromSortedMonomials not zero")
	}
}

// Reset must empty the table while keeping it usable, and stale cached IDs
// from a previous epoch must never short-circuit to a wrong answer — the
// pooled reset-not-reallocate lifecycle the XL/ElimLin rounds rely on.
func TestMonoTableReset(t *testing.T) {
	tab := NewMonoTable()
	ca := tab.Canonical(NewMonomial(1, 2)) // epoch 1: id 0
	cb := tab.Canonical(NewMonomial(7))    // epoch 1: id 1
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", tab.Len())
	}
	if _, ok := tab.Lookup(ca); ok {
		t.Fatalf("Lookup found %v after Reset", ca)
	}
	// Epoch 2 interns in the opposite order: cb must not keep its stale id.
	if id := tab.ID(cb); id != 0 {
		t.Fatalf("epoch-2 ID(%v) = %d, want 0", cb, id)
	}
	if id := tab.ID(ca); id != 1 {
		t.Fatalf("epoch-2 ID(%v) = %d, want 1", ca, id)
	}
	if got := tab.Mono(1); !got.Equal(ca) {
		t.Fatalf("epoch-2 Mono(1) = %v, want %v", got, ca)
	}
	// Same-order re-interning (the common repeated-pass shape) also agrees.
	tab.Reset()
	for want, m := range []Monomial{cb, ca, One} {
		if id := tab.ID(m); id != uint32(want) {
			t.Fatalf("epoch-3 ID(%v) = %d, want %d", m, id, want)
		}
	}
	if tab.Len() != 3 {
		t.Fatalf("epoch-3 Len = %d, want 3", tab.Len())
	}
}
