package lint

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// pkgPathHas reports whether the package's import path contains the slash-
// separated fragment (e.g. "internal/core") as whole path segments. Both
// the real module ("repro/internal/core") and test fixtures
// ("fixture/internal/core") match.
func pkgPathHas(pkg *Package, fragment string) bool {
	path := "/" + pkg.Path + "/"
	return strings.Contains(path, "/"+fragment+"/")
}

// exprText renders an expression as source text — the cheap structural
// identity used to match "the same lock" or "the same hook field" across
// statements. One shared printer config keeps the rendering canonical.
func exprText(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&b, fset, e); err != nil {
		return ""
	}
	return b.String()
}

// calleeName returns the final identifier of a call's function expression:
// "Err" for ctx.Err(), "ctxCanceled" for ctxCanceled(ctx), "" for
// anonymous calls.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// callReceiver returns the receiver expression of a method-style call
// (nil for plain function calls).
func callReceiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// typeHasContextField reports whether t (after stripping pointers) is a
// struct with a field of type context.Context — the repo's Config-struct
// way of threading cancellation.
func typeHasContextField(t types.Type) bool {
	t = derefType(t)
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// derefType strips one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// typeOf looks up the static type of an expression, or nil.
func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// intConstValue returns the constant integer value of an expression, with
// ok=false for non-constant or non-integer expressions.
func intConstValue(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// isPkgIdent reports whether e is a reference to the named import of the
// given package path (e.g. the "rand" in rand.Intn for "math/rand").
func isPkgIdent(pkg *Package, e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := pkg.Info.Uses[id]
	if !ok {
		return false
	}
	pn, ok := obj.(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// funcDeclFor maps a *types.Func back to its declaration within the
// package, or nil.
func funcDeclFor(pkg *Package, fn *types.Func) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pkg.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// containsCall reports whether any call within node satisfies pred.
func containsCall(node ast.Node, pred func(*ast.CallExpr) bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && pred(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// eachFuncBody visits every function body of a file: declared functions,
// methods, and function literals. The enclosing FuncDecl (nil for
// package-level var initializers) rides along for naming.
func eachFuncBody(file *ast.File, visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			visit(fd, fd.Body)
		}
	}
}
