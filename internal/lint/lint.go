// Package lint is a miniature static-analysis framework built only on the
// standard library's go/ast, go/parser and go/types — no golang.org/x/tools
// — matching the repo's from-scratch ethos. It exists to machine-check the
// invariants the rest of the codebase relies on but no compiler enforces:
// context polling in long-running technique loops, bit-identical fact
// learning (no wall-clock or map-order dependence in provenance-tracked
// paths), word-packed GF(2) indexing confined to internal/gf2, nil-guarded
// proof hooks, disciplined mutex handling, arena ref/view lifetimes,
// allocation-free hot paths, goroutine exit paths, and used verdicts.
//
// The pieces: LoadProgram parses and type-checks the module's packages
// (plus their module-local dependencies, for call-effect summaries),
// Analyzer is one rule with an AST-walking Run function, RunProgram
// applies analyzers and resolves //lint:ignore suppressions, and
// cmd/bosphoruslint is the multichecker CLI in front of it all. The
// flow-sensitive rules run on the engine in cfg.go, dataflow.go and
// summary.go; directive.go owns the comment-directive grammar.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one positioned finding.
type Diagnostic struct {
	// Analyzer names the rule that produced the finding.
	Analyzer string `json:"analyzer"`
	// Pos locates the finding (file:line:column).
	Pos token.Position `json:"pos"`
	// Message states the violated invariant and, where possible, the fix.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the identifier used on the command line and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the rule guards.
	Doc string
	// Run inspects one type-checked package and reports findings through
	// the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) pairing.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the enclosing program: call-effect summaries and the
	// declaration index span every module-local package loaded with Pkg.
	Prog *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable (alphabetical) order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		ArenaGCAnalyzer,
		ArenaRefAnalyzer,
		CtxPollAnalyzer,
		DeterminismAnalyzer,
		GF2PackAnalyzer,
		GoLeakAnalyzer,
		HotpathAnalyzer,
		LockHoldAnalyzer,
		ProofHookAnalyzer,
		VerdictCheckAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list against the suite.
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ignoreDirective is one parsed //lint:ignore comment, bound to the code
// it suppresses.
type ignoreDirective struct {
	analyzer string
	file     string
	// line is the directive's own line (inline directives suppress
	// diagnostics on that line).
	line int
	// start/end are the byte-offset extent of the next statement, for
	// standalone directives (0,0 when inline).
	start, end int
	pos        token.Position
	used       bool
}

// matches reports whether the directive suppresses d.
func (ig *ignoreDirective) matches(d Diagnostic) bool {
	if ig.analyzer != d.Analyzer || ig.file != d.Pos.Filename {
		return false
	}
	if ig.end > 0 {
		return d.Pos.Offset >= ig.start && d.Pos.Offset <= ig.end
	}
	return d.Pos.Line == ig.line
}

// bindTarget is one node a standalone directive can bind to: statements,
// specs, and function-declaration headers.
type bindTarget struct {
	pos, end token.Pos
}

// parseFileDirectives extracts a file's //lint:ignore directives, binds
// each to the code it governs, and reports directive misuse: malformed
// directives, orphaned suppressions with no following statement, and
// //bosphorus:hotpath annotations outside a function doc comment.
// Binding is strict: an inline directive (sharing a line with code)
// suppresses its own line; a standalone directive suppresses exactly the
// next statement after it — not "whatever happens to sit one line down".
func parseFileDirectives(pkg *Package, file *ast.File, diags *[]Diagnostic) []*ignoreDirective {
	codeLines := map[int]bool{}
	var targets []bindTarget
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		codeLines[pkg.Fset.Position(n.Pos()).Line] = true
		codeLines[pkg.Fset.Position(n.End()).Line] = true
		switch n := n.(type) {
		case *ast.FuncDecl:
			end := n.End()
			if n.Body != nil {
				end = n.Body.Lbrace
			}
			targets = append(targets, bindTarget{pos: n.Pos(), end: end})
		case ast.Stmt:
			if _, isBlock := n.(*ast.BlockStmt); !isBlock {
				targets = append(targets, bindTarget{pos: n.Pos(), end: n.End()})
			}
		case ast.Spec:
			targets = append(targets, bindTarget{pos: n.Pos(), end: n.End()})
		}
		return true
	})
	// Function doc comments are the one legal home for //bosphorus:hotpath.
	funcDocs := map[*ast.CommentGroup]bool{}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			funcDocs[fd.Doc] = true
		}
	}
	var out []*ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			dir, isDir, err := ParseDirective(c.Text)
			if !isDir {
				continue
			}
			cpos := pkg.Fset.Position(c.Pos())
			if err != nil {
				*diags = append(*diags, Diagnostic{
					Analyzer: "lint",
					Pos:      cpos,
					Message:  err.Error(),
				})
				continue
			}
			if dir.Kind == DirHotpath {
				if !funcDocs[cg] {
					*diags = append(*diags, Diagnostic{
						Analyzer: "lint",
						Pos:      cpos,
						Message:  "misplaced //bosphorus:hotpath annotation: it must appear in a function's doc comment",
					})
				}
				continue
			}
			ig := &ignoreDirective{
				analyzer: dir.Analyzer,
				file:     cpos.Filename,
				pos:      cpos,
			}
			if codeLines[cpos.Line] {
				// Inline: trailing a statement, suppresses that line.
				ig.line = cpos.Line
			} else {
				// Standalone: bind to the next statement strictly after the
				// directive; its full extent is the suppression range.
				var best *bindTarget
				for i := range targets {
					t := &targets[i]
					if t.pos > c.End() && (best == nil || t.pos < best.pos) {
						best = t
					}
				}
				if best == nil {
					*diags = append(*diags, Diagnostic{
						Analyzer: "lint",
						Pos:      cpos,
						Message:  "orphaned //lint:ignore directive: no statement follows it to suppress",
					})
					continue
				}
				ig.start = pkg.Fset.Position(best.pos).Offset
				ig.end = pkg.Fset.Position(best.end).Offset
			}
			out = append(out, ig)
		}
	}
	return out
}

// Run applies the analyzers to the packages and returns the surviving
// diagnostics, sorted by position. It treats the packages as a closed
// program (summaries span exactly pkgs); callers with a loader should
// prefer LoadProgram + RunProgram so summaries also cover module-local
// dependencies outside the requested patterns.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(&Program{Pkgs: pkgs, All: pkgs}, analyzers)
}

// RunProgram applies the analyzers to the program's packages and returns
// the surviving diagnostics, sorted by position. //lint:ignore directives
// bound to a diagnostic's statement (or line, for inline directives) drop
// it; a directive for an analyzer that ran but suppressed nothing is
// itself reported, so stale suppressions cannot silently outlive the code
// they excused.
func RunProgram(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var ignores []*ignoreDirective
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ignores = append(ignores, parseFileDirectives(pkg, f, &diags)...)
		}
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Prog: prog, diags: &diags})
		}
	}
	byFile := map[string][]*ignoreDirective{}
	for _, ig := range ignores {
		byFile[ig.file] = append(byFile[ig.file], ig)
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, ig := range byFile[d.Pos.Filename] {
			if ig.matches(d) {
				ig.used = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	diags = kept
	for _, ig := range ignores {
		if !ig.used && ran[ig.analyzer] {
			diags = append(diags, Diagnostic{
				Analyzer: "lint",
				Pos:      token.Position{Filename: ig.file, Line: ig.pos.Line, Column: 1},
				Message:  fmt.Sprintf("unused //lint:ignore directive: no %s diagnostic here to suppress", ig.analyzer),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
