package proof

import (
	"bytes"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// php builds the pigeonhole formula PHP(pigeons, holes): UNSAT whenever
// pigeons > holes, and it needs genuine conflict analysis (no single
// propagation chain refutes it).
func php(pigeons, holes int) *cnf.Formula {
	f := &cnf.Formula{}
	x := func(p, h int) cnf.Var { return cnf.Var(p*holes + h) }
	for p := 0; p < pigeons; p++ {
		lits := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = cnf.MkLit(x(p, h), false)
		}
		f.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				f.AddClause(cnf.MkLit(x(p, h), true), cnf.MkLit(x(q, h), true))
			}
		}
	}
	return f
}

func solveWithProof(t *testing.T, f *cnf.Formula, profile sat.Profile, probe bool, binary bool) (sat.Status, []byte) {
	t.Helper()
	var buf bytes.Buffer
	var w sat.ProofWriter
	if binary {
		w = NewBinaryWriter(&buf)
	} else {
		w = NewTextWriter(&buf)
	}
	s := sat.New(sat.DefaultOptions(profile))
	s.SetProof(w)
	ok := s.AddFormula(f)
	st := sat.Unsat
	if ok {
		if probe {
			s.ProbeLiterals(0)
		}
		if s.Okay() {
			st = s.Solve()
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return st, buf.Bytes()
}

func TestRoundTripPigeonhole(t *testing.T) {
	for _, tc := range []struct {
		name    string
		profile sat.Profile
		binary  bool
		probe   bool
	}{
		{"minisat-text", sat.ProfileMiniSat, false, false},
		{"minisat-binary", sat.ProfileMiniSat, true, false},
		{"lingeling-text", sat.ProfileLingeling, false, false},
		{"cms-text", sat.ProfileCMS, false, false},
		{"minisat-probe", sat.ProfileMiniSat, false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := php(5, 4)
			st, pf := solveWithProof(t, f, tc.profile, tc.probe, tc.binary)
			if st != sat.Unsat {
				t.Fatalf("PHP(5,4) status = %v, want Unsat", st)
			}
			res, err := Check(f, bytes.NewReader(pf))
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if !res.Verified {
				t.Fatalf("proof not verified: %+v (proof %d bytes)", res, len(pf))
			}
		})
	}
}

func TestRoundTripXorGauss(t *testing.T) {
	// Native XOR rows (CMS profile): x1⊕x2=1, x2⊕x3=1, x1⊕x3=1 is UNSAT
	// (the three rows sum to 0=1); refutation flows through the Gauss
	// component, so the proof leans on "x" justification records.
	f := &cnf.Formula{}
	f.AddXor(true, 0, 1)
	f.AddXor(true, 1, 2)
	f.AddXor(true, 0, 2)
	st, pf := solveWithProof(t, f, sat.ProfileCMS, false, false)
	if st != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", st)
	}
	res, err := Check(f, bytes.NewReader(pf))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Verified {
		t.Fatalf("xor proof not verified: %+v", res)
	}
}

func TestRoundTripXorSearch(t *testing.T) {
	// XOR rows that are consistent on their own but clash with clauses, so
	// the conflict is found during search with Gauss reasons in play:
	// x1⊕x2=1 plus clauses forcing x1=x2.
	f := &cnf.Formula{}
	f.AddXor(true, 0, 1)
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(1, false))
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(1, true))
	st, pf := solveWithProof(t, f, sat.ProfileCMS, false, false)
	if st != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", st)
	}
	res, err := Check(f, bytes.NewReader(pf))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !res.Verified {
		t.Fatalf("xor+clause proof not verified: %+v", res)
	}
}

// parityBlend builds an UNSAT mix of short XOR constraints and clauses
// that needs real search: a parity chain x0⊕x1, x1⊕x2, ... fixing
// x0 = x_{n-1} parity-wise, plus clauses demanding the opposite.
func parityBlend(n int) *cnf.Formula {
	f := &cnf.Formula{}
	for i := 0; i+1 < n; i++ {
		f.AddXor(false, cnf.Var(i), cnf.Var(i+1)) // x_i = x_{i+1}
	}
	// Equality chain forces x0 == x_{n-1}; demand x0 != x_{n-1} clausally.
	last := cnf.Var(n - 1)
	f.AddClause(cnf.MkLit(0, false), cnf.MkLit(last, false))
	f.AddClause(cnf.MkLit(0, true), cnf.MkLit(last, true))
	return f
}

func TestRoundTripParityNative(t *testing.T) {
	// Native parity clauses (the default for every profile since the
	// NativeXor option landed): propagation and conflicts flow through the
	// packed parity kind, whose implications are justified with "x" records
	// over the clause's full variable set.
	for _, tc := range []struct {
		name    string
		profile sat.Profile
		binary  bool
	}{
		{"minisat-text", sat.ProfileMiniSat, false},
		{"minisat-binary", sat.ProfileMiniSat, true},
		{"cms-text", sat.ProfileCMS, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := parityBlend(9)
			st, pf := solveWithProof(t, f, tc.profile, false, tc.binary)
			if st != sat.Unsat {
				t.Fatalf("status = %v, want Unsat", st)
			}
			res, err := Check(f, bytes.NewReader(pf))
			if err != nil {
				t.Fatalf("Check: %v", err)
			}
			if !res.Verified {
				t.Fatalf("native parity proof not verified: %+v (proof %d bytes)", res, len(pf))
			}
		})
	}
}

func TestMutatedParityProofRejected(t *testing.T) {
	// Corrupting a parity-derived proof must break verification: the
	// mutated clause's "x" justification row no longer reduces to zero in
	// the XOR rowspan (or the RUP chain breaks downstream).
	f := parityBlend(9)
	st, pf := solveWithProof(t, f, sat.ProfileMiniSat, false, false)
	if st != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", st)
	}
	mut := append([]byte(nil), pf...)
	for i, b := range mut {
		if b == '-' {
			mut[i] = ' ' // flip one literal's polarity, keep the stream parseable
			break
		}
	}
	if bytes.Equal(mut, pf) {
		t.Skip("proof contains no negative literal to mutate")
	}
	res, err := Check(f, bytes.NewReader(mut))
	if err == nil && res.Verified {
		t.Fatalf("mutated parity proof still verified: %+v", res)
	}
}

func TestRoundTripSatisfiableNoVerdict(t *testing.T) {
	// A satisfiable formula yields a well-formed stream that simply never
	// derives the empty clause.
	f := php(3, 4)
	st, pf := solveWithProof(t, f, sat.ProfileMiniSat, false, false)
	if st != sat.Sat {
		t.Fatalf("status = %v, want Sat", st)
	}
	res, err := Check(f, bytes.NewReader(pf))
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if res.Verified {
		t.Fatalf("satisfiable instance must not verify UNSAT: %+v", res)
	}
}

func TestMutatedSolverProofRejected(t *testing.T) {
	f := php(5, 4)
	st, pf := solveWithProof(t, f, sat.ProfileMiniSat, false, false)
	if st != sat.Unsat {
		t.Fatalf("status = %v, want Unsat", st)
	}
	// Flip the polarity of the first literal of the first learnt clause.
	mut := append([]byte(nil), pf...)
	for i, b := range mut {
		if b == '-' {
			// Drop the minus sign: " -3 " -> " 3 " keeps the stream parseable
			// but changes the clause.
			mut[i] = ' '
			break
		}
	}
	if bytes.Equal(mut, pf) {
		t.Skip("proof contains no negative literal to mutate")
	}
	res, err := Check(f, bytes.NewReader(mut))
	if err == nil && res.Verified {
		// The mutation may happen to produce another valid proof only if the
		// flipped clause is still RUP at that point; for PHP learnt clauses
		// this does not occur.
		t.Fatalf("mutated proof still verified: %+v", res)
	}
}
