package anf

import "fmt"

// FromTruthTable returns the unique polynomial over vars whose evaluation
// matches the given truth table: table[m] is the function value at the
// assignment where vars[i] takes bit i of m. The conversion is the Möbius
// transform (fast zeta transform over the subset lattice) — the standard
// way to derive the explicit ANF of an S-box output bit, used by the
// cipher encoders as an alternative to implicit quadratic relations.
func FromTruthTable(vars []Var, table []bool) Poly {
	n := len(vars)
	if len(table) != 1<<uint(n) {
		panic(fmt.Sprintf("anf: table length %d for %d variables", len(table), n))
	}
	coeff := make([]bool, len(table))
	copy(coeff, table)
	// In-place butterfly: coeff[m] becomes XOR of table over all subsets
	// of m.
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := range coeff {
			if m&bit != 0 {
				coeff[m] = coeff[m] != coeff[m^bit]
			}
		}
	}
	var monos []Monomial
	for m, c := range coeff {
		if !c {
			continue
		}
		var vs []Var
		for i := 0; i < n; i++ {
			if m>>uint(i)&1 == 1 {
				vs = append(vs, vars[i])
			}
		}
		monos = append(monos, NewMonomial(vs...))
	}
	return FromMonomials(monos...)
}

// TruthTable evaluates p over all assignments of vars, returning the table
// in the same layout FromTruthTable consumes. Variables of p outside vars
// are taken as false.
func (p Poly) TruthTable(vars []Var) []bool {
	n := len(vars)
	idx := make(map[Var]int, n)
	for i, v := range vars {
		idx[v] = i
	}
	out := make([]bool, 1<<uint(n))
	for m := range out {
		out[m] = p.Eval(func(v Var) bool {
			i, ok := idx[v]
			return ok && m>>uint(i)&1 == 1
		})
	}
	return out
}
