package anf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromTruthTableConstants(t *testing.T) {
	vars := []Var{0, 1}
	if !FromTruthTable(vars, []bool{false, false, false, false}).IsZero() {
		t.Fatal("all-false table should give 0")
	}
	if !FromTruthTable(vars, []bool{true, true, true, true}).IsOne() {
		t.Fatal("all-true table should give 1")
	}
}

func TestFromTruthTableKnown(t *testing.T) {
	vars := []Var{0, 1}
	// AND: true only at m=3.
	and := FromTruthTable(vars, []bool{false, false, false, true})
	if !and.Equal(MustParsePoly("x0*x1")) {
		t.Fatalf("AND = %s", and)
	}
	// XOR: true at m=1,2.
	xor := FromTruthTable(vars, []bool{false, true, true, false})
	if !xor.Equal(MustParsePoly("x0 + x1")) {
		t.Fatalf("XOR = %s", xor)
	}
	// OR = x0 + x1 + x0x1.
	or := FromTruthTable(vars, []bool{false, true, true, true})
	if !or.Equal(MustParsePoly("x0*x1 + x0 + x1")) {
		t.Fatalf("OR = %s", or)
	}
}

func TestFromTruthTableLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad table length")
		}
	}()
	FromTruthTable([]Var{0, 1}, []bool{true})
}

// Property: FromTruthTable ∘ TruthTable is the identity on polynomials
// over the chosen variables, and TruthTable ∘ FromTruthTable is the
// identity on tables.
func TestQuickMobiusRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		vars := make([]Var, n)
		for i := range vars {
			vars[i] = Var(i)
		}
		table := make([]bool, 1<<uint(n))
		for i := range table {
			table[i] = rng.Intn(2) == 1
		}
		p := FromTruthTable(vars, table)
		back := p.TruthTable(vars)
		for i := range table {
			if back[i] != table[i] {
				return false
			}
		}
		// And the polynomial round trip.
		q := FromTruthTable(vars, back)
		return q.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMobiusNonContiguousVars(t *testing.T) {
	vars := []Var{3, 7}
	p := FromTruthTable(vars, []bool{false, false, false, true})
	if !p.Equal(MustParsePoly("x3*x7")) {
		t.Fatalf("got %s", p)
	}
}
